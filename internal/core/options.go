// Package core implements the Adaptive Bulk Search framework: the
// asynchronous combination of a host-side genetic algorithm and
// device-side bulk local searches described in §3 of the paper.
//
// The host (§3.1) owns a sorted, distinct solution pool. Device blocks
// (§3.2) each own an incremental qubo.State (the Δ register file) and
// loop forever: read a target solution from the target buffer, straight-
// search to it (Algorithm 5), local-search around it (Algorithm 4 with
// the offset-window policy), publish the best-found solution to the
// solution buffer, reset, repeat. Host and devices communicate only
// through the gpusim global-memory buffers — no block ever waits for
// the host or for another block, which is the property that lets the
// paper run 4352 blocks with no synchronization overhead.
package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"abs/internal/backend"
	"abs/internal/bitvec"
	"abs/internal/diversity"
	"abs/internal/ga"
	"abs/internal/gpusim"
	"abs/internal/telemetry"
)

// Progress is the periodic run snapshot passed to Options.Progress and
// rendered by Options.ProgressWriter.
type Progress struct {
	// Elapsed is the time since launch.
	Elapsed time.Duration
	// BestEnergy is the pool's best evaluated energy; BestKnown is
	// false while no device has reported yet.
	BestEnergy int64
	BestKnown  bool
	// Flips and Evaluated are cluster-wide counters so far.
	Flips, Evaluated uint64
	// Dropped and Quarantined surface degradation live: publications
	// lost to the bounded buffer and publications the ingest gate
	// refused (see the same-named Result fields).
	Dropped, Quarantined uint64
}

// String renders the standard one-line human-readable progress report
// (what abs-solve -v prints once per second).
func (p Progress) String() string {
	best := "n/a"
	if p.BestKnown {
		best = fmt.Sprintf("%d", p.BestEnergy)
	}
	rate := 0.0
	if s := p.Elapsed.Seconds(); s > 0 {
		rate = float64(p.Evaluated) / s
	}
	s := fmt.Sprintf("[%7.1fs] best %s, %d flips, %.3g sol/s",
		p.Elapsed.Seconds(), best, p.Flips, rate)
	if p.Dropped > 0 || p.Quarantined > 0 {
		s += fmt.Sprintf(" (%d dropped, %d quarantined)", p.Dropped, p.Quarantined)
	}
	return s
}

// Options configures a Solve run. The zero value is not valid; start
// from DefaultOptions.
type Options struct {
	// Device is the simulated GPU model; NumGPUs is the cluster size.
	Device  gpusim.DeviceSpec
	NumGPUs int

	// BitsPerThread is the p of §3.2. Zero selects the best
	// 100 %-occupancy configuration automatically, as the paper does.
	BitsPerThread int

	// GA configures the host genetic algorithm.
	GA ga.Config

	// LocalSteps is the fixed number of forced flips in each local-
	// search phase (§3.2 Step 4b) between target reads.
	LocalSteps int

	// WindowMin and WindowMax bound the offset-window length l assigned
	// to blocks. Block b receives a window interpolated between the two,
	// so the block population spans exploration temperatures in the
	// spirit of parallel tempering (§2.1). Zero values derive defaults
	// from the problem size.
	WindowMin, WindowMax int

	// Seed makes the host's target stream reproducible. Full runs are
	// still not bit-identical: blocks race asynchronously by design
	// (§3), so how many search rounds fit between target updates
	// depends on scheduling.
	Seed uint64

	// Stop conditions; at least one must be set.
	//
	// TargetEnergy stops the run once the pool's best energy is ≤ the
	// value ("time-to-solution" runs, §4.2).
	TargetEnergy *int64
	// MaxDuration stops the run after a wall-clock budget.
	MaxDuration time.Duration
	// MaxFlips stops the run after the cluster performs this many flips
	// in total (each flip evaluates n solutions).
	MaxFlips uint64

	// PollInterval is the host's Step 2 polling cadence. Zero means
	// 100 µs.
	PollInterval time.Duration

	// Storage selects the search-engine representation; see the
	// constants. StorageAuto picks sparse when the instance's
	// off-diagonal density is below qubo.DefaultSparseDensityThreshold
	// (30 %, chosen from BenchmarkFlipCrossover measurements), where
	// the O(deg) flip decisively beats the dense O(n) kernel.
	Storage Storage

	// Backend selects the solver backend every search unit runs — the
	// device-side algorithm behind the shared pool protocol. The zero
	// value (BackendAuto) defers: a cluster worker takes the
	// coordinator's registration grant, and an engine falls back to
	// BackendStraight, the paper's algorithm. Validate rejects names
	// with no registered factory with ErrUnknownBackend.
	Backend Backend

	// Diversity tunes the DABS control loops (arXiv 2207.03069; see
	// internal/diversity): Radius/Buckets/MinPerBucket configure the
	// Hamming-distance pool admission policy (Radius 0 — the default —
	// keeps the paper's plain elite pool), and Floor/Window/Interval
	// tune the race backend's adaptive unit allocator (Floor >= 1.0
	// pins the static g mod 3 split). The zero value means
	// diversity.DefaultSpec: admission off, allocator adaptive with a
	// 10% exploration floor.
	Diversity diversity.Spec

	// Warm starts: vectors inserted into the solution pool before the
	// run, e.g. a 2-opt tour for a TSP instance. They enter with
	// unknown energy — the host never evaluates the energy function
	// (§3.1) — and become GA parents once blocks report energies for
	// the regions around them.
	WarmStarts []*bitvec.Vector

	// Progress, when non-nil, is called from the host loop every
	// ProgressEvery (default 1 s) with a snapshot of the run. The
	// callback runs on the host goroutine: keep it fast. It is kept as
	// a thin adapter over the telemetry-driven progress path; new code
	// wanting the standard line should set ProgressWriter, and code
	// wanting machine-readable live state should scrape Telemetry.
	Progress      func(Progress)
	ProgressEvery time.Duration

	// ProgressWriter, when non-nil, receives the standard one-line
	// progress report (Progress.String) every ProgressEvery. Ticks are
	// anchored to the launch time, so a slow callback or a loaded host
	// delays a line but does not stretch the schedule.
	ProgressWriter io.Writer

	// Telemetry, when non-nil, receives the run's full instrument
	// catalogue (see DESIGN.md §6): per-device flip counters and rates,
	// ingest accept/reject classes, pool admission traffic, supervisor
	// respawns/retirements, drain-batch and ingest-latency histograms.
	// Device blocks batch their counter updates once per round, so the
	// flip loop stays free of telemetry work. Registering the same
	// registry across several runs accumulates counters; use
	// telemetry.Snapshot.Sub to isolate one run.
	Telemetry *telemetry.Registry

	// Tracer, when non-nil, receives structured lifecycle events
	// (target/solution publishes, ingest verdicts, respawns,
	// retirements, pool admissions, injected faults). Attach a sink
	// for a JSONL dump, or scrape /trace on the telemetry endpoint.
	Tracer *telemetry.Tracer

	// Span, when valid, is the enclosing span context (a serve job's
	// run span, a cluster worker's root span). Every trace event the
	// run emits is stamped with it, so engine events land inside the
	// caller's causal timeline instead of floating free.
	Span telemetry.SpanContext

	// Adaptive lets every block reschedule its own window length when
	// it stagnates (double on AdaptivePatience stagnant rounds, wrap to
	// WindowMin past WindowMax) — the paper's future-work direction of
	// automatically changing per-block search behaviour (§5). When
	// false, blocks keep the static ladder of §2.1.
	Adaptive bool
	// AdaptivePatience is the stagnant-round threshold; zero means 8.
	AdaptivePatience int

	// Faults, when non-nil, injects simulated block failures (crashes,
	// stalls, corrupted publications) according to the plan — the test
	// hook for the fault-tolerance layer. Production runs leave it nil.
	Faults *gpusim.FaultPlan

	// DisableSupervisor turns off heartbeat-based block supervision.
	// With supervision on (the default), the host loop detects blocks
	// that have made no progress for SupervisorGrace and respawns them
	// with a fresh engine and a new target; blocks on a device the
	// fault plan has marked failed are retired instead, and their
	// target slots redistributed over the survivors.
	DisableSupervisor bool
	// SupervisorGrace is how long a block may go without a progress
	// heartbeat before the supervisor declares it dead or stalled.
	// Zero means 2 s — generously above a healthy round even for large
	// instances on oversubscribed hosts; a false positive only costs
	// the superseded incarnation's in-flight round.
	SupervisorGrace time.Duration

	// TrustPublications recovers the paper's pure §3.1 ingest protocol:
	// the host inserts device energies as claimed, never evaluating the
	// energy function itself. By default (false) the host re-evaluates
	// each publication's energy and quarantines mismatches — a
	// documented deviation from the paper (see DESIGN.md "Fault model &
	// substitutions") that keeps a corrupted worker from poisoning the
	// GA pool. Structural checks (vector width, block indices) are
	// always enforced.
	TrustPublications bool

	// SolutionBufferCap bounds the device→host publication buffer: a
	// drain-starved host drops the oldest pending publications instead
	// of growing without limit (Result.Dropped counts them). Zero means
	// 4 × the block count (at least 1024); negative means unbounded.
	SolutionBufferCap int
}

// Storage selects the incremental-engine representation used by the
// search units.
type Storage int

const (
	// StorageAuto chooses per instance by density.
	StorageAuto Storage = iota
	// StorageDense always uses the paper's dense kernel (O(n) flips,
	// n evaluated solutions per flip).
	StorageDense
	// StorageSparse always uses the adjacency engine (O(deg) flips).
	StorageSparse
)

func (s Storage) String() string {
	switch s {
	case StorageAuto:
		return "auto"
	case StorageDense:
		return "dense"
	case StorageSparse:
		return "sparse"
	default:
		return fmt.Sprintf("Storage(%d)", int(s))
	}
}

// ParseStorage parses "auto", "dense" or "sparse" (the String forms) —
// the shared decoder for CLI -storage flags and the cluster protocol's
// storage field.
func ParseStorage(s string) (Storage, error) {
	switch s {
	case "", "auto":
		return StorageAuto, nil
	case "dense":
		return StorageDense, nil
	case "sparse":
		return StorageSparse, nil
	default:
		return StorageAuto, fmt.Errorf("core: unknown storage %q (want auto, dense or sparse)", s)
	}
}

// Backend names a registered solver backend (see internal/backend):
// the per-block search program raced behind the shared ABS pool
// protocol. The zero value (BackendAuto) defers the choice — a
// cluster worker takes the coordinator's registration grant, and an
// engine resolves it to BackendStraight, the paper's single-algorithm
// behaviour.
type Backend string

const (
	// BackendAuto defers the backend choice (grant, then straight).
	BackendAuto Backend = ""
	// BackendStraight is the paper's §3.2 program: straight search to
	// the pool target, then bulk local search on the offset-window
	// ladder.
	BackendStraight Backend = "straight"
	// BackendSB runs simulated bifurcation dynamics on float spins
	// over the Ising form of the instance.
	BackendSB Backend = "sb"
	// BackendTabu runs diversified multi-start tabu search.
	BackendTabu Backend = "tabu"
	// BackendRace splits the fleet's units across straight, sb and
	// tabu, racing the portfolio through the one shared pool.
	BackendRace Backend = "race"
)

func (b Backend) String() string {
	if b == BackendAuto {
		return "auto"
	}
	return string(b)
}

// ErrUnknownBackend is the typed sentinel behind backend-validation
// failures (ParseBackend, Options.Validate): the named backend has no
// registered factory. Match with errors.Is.
var ErrUnknownBackend = backend.ErrUnknown

// ParseBackend parses a backend name ("auto" or the empty string for
// BackendAuto, else a registered name) — the shared decoder for CLI
// -backend flags, serve job specs and the cluster protocol's backend
// grant. Unknown names fail with ErrUnknownBackend, listing what is
// registered.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	}
	if !backend.Known(s) {
		return BackendAuto, fmt.Errorf("core: %w %q (registered: %s)",
			ErrUnknownBackend, s, strings.Join(backend.Names(), ", "))
	}
	return Backend(s), nil
}

// Backends lists the registered solver backends with their one-line
// descriptions, sorted by name — what GET /v1/backends and CLI usage
// strings render.
func Backends() []backend.Info { return backend.List() }

// DefaultOptions returns options sized for solving on a CPU host: a
// small virtual cluster (one device with a few SMs keeps per-flip
// throughput high while preserving search diversity), automatic block
// shape, and the default GA mix. Callers must still set a stop
// condition.
func DefaultOptions() Options {
	return Options{
		Device:     gpusim.ScaledCPU(2),
		NumGPUs:    1,
		GA:         ga.DefaultConfig(),
		LocalSteps: 512,
		Seed:       1,
	}
}

// PaperOptions returns options that reconstruct the paper's hardware
// shape — four RTX 2080 Ti with full occupancy — for throughput
// experiments where the block population matters more than per-block
// speed.
func PaperOptions() Options {
	o := DefaultOptions()
	o.Device = gpusim.TuringRTX2080Ti()
	o.NumGPUs = 4
	return o
}

// Validate reports whether the options are viable for an n-bit
// instance, applying the same defaulting and checks a Solve run would.
// Schedulers use it to reject a bad job at submission time, before any
// run state is built.
func (o Options) Validate(n int) error {
	_, err := o.normalize(n)
	return err
}

// normalize fills derived defaults and validates; it returns the final
// options.
func (o Options) normalize(n int) (Options, error) {
	if o.NumGPUs <= 0 {
		return o, fmt.Errorf("core: NumGPUs must be positive, got %d", o.NumGPUs)
	}
	if o.LocalSteps <= 0 {
		return o, fmt.Errorf("core: LocalSteps must be positive, got %d", o.LocalSteps)
	}
	if err := o.GA.Validate(); err != nil {
		return o, err
	}
	if o.TargetEnergy == nil && o.MaxDuration == 0 && o.MaxFlips == 0 {
		return o, fmt.Errorf("core: no stop condition set (TargetEnergy, MaxDuration or MaxFlips)")
	}
	b, err := ParseBackend(string(o.Backend))
	if err != nil {
		return o, err
	}
	o.Backend = b
	if o.Diversity == (diversity.Spec{}) {
		o.Diversity = diversity.DefaultSpec()
	}
	o.Diversity, err = o.Diversity.Normalize()
	if err != nil {
		return o, err
	}
	if o.BitsPerThread == 0 {
		p, err := o.Device.BestBitsPerThread(n)
		if err != nil {
			return o, err
		}
		o.BitsPerThread = p
	}
	if o.WindowMin == 0 {
		o.WindowMin = 4
	}
	if o.WindowMax == 0 {
		o.WindowMax = n / 4
		if o.WindowMax < o.WindowMin {
			o.WindowMax = o.WindowMin
		}
	}
	if o.WindowMin < 1 || o.WindowMax < o.WindowMin {
		return o, fmt.Errorf("core: invalid window range [%d, %d]", o.WindowMin, o.WindowMax)
	}
	if o.PollInterval == 0 {
		o.PollInterval = 100 * time.Microsecond
	}
	if o.AdaptivePatience == 0 {
		o.AdaptivePatience = 8
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = time.Second
	}
	if o.SupervisorGrace == 0 {
		o.SupervisorGrace = 2 * time.Second
	}
	if o.SupervisorGrace < 0 {
		return o, fmt.Errorf("core: SupervisorGrace %v must be positive", o.SupervisorGrace)
	}
	for i, ws := range o.WarmStarts {
		if ws == nil || ws.Len() != n {
			return o, fmt.Errorf("core: warm start %d is nil or has wrong length", i)
		}
	}
	if o.AdaptivePatience < 1 {
		return o, fmt.Errorf("core: AdaptivePatience %d must be positive", o.AdaptivePatience)
	}
	if !o.Device.FitsGlobalMemory(n) {
		return o, fmt.Errorf("core: %d-bit instance does not fit %s global memory", n, o.Device.Name)
	}
	return o, nil
}
