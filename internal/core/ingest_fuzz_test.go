package core

import (
	"testing"

	"abs/internal/bitvec"
	"abs/internal/ga"
	"abs/internal/gpusim"
	"abs/internal/rng"
)

// FuzzIngestGate throws arbitrary publications — any vector width and
// content, any claimed energy, any device/block indices — at the host's
// validation gate. Whatever arrives, the gate must not panic, must only
// retarget addressable slots, and (with validation on) must never let a
// lying energy into the pool; pool invariants must hold throughout.
func FuzzIngestGate(f *testing.F) {
	f.Add([]byte{0xff, 0x01}, 24, int64(-10), 0, 0, false)
	f.Add([]byte{}, 0, int64(0), -1, 99, false)
	f.Add([]byte{0xaa}, 7, ga.UnknownEnergy, 1, 15, true)
	f.Add([]byte{0x01, 0x02, 0x03}, 1<<16, int64(1), 1<<60, 1<<60, false)
	f.Add([]byte{0x10}, 24, int64(3), 1, 3, true)

	const (
		n            = 24
		activeBlocks = 16
		totalBlocks  = 32
	)
	problem := randomProblem(n, 77)

	f.Fuzz(func(t *testing.T, bits []byte, width int, energy int64, device, block int, trust bool) {
		// Rebuild a fresh pool per input so invariant checks are cheap
		// and the pool state is deterministic per case.
		host, err := ga.NewHost(n, ga.DefaultConfig(), rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		gate := &ingestGate{
			adm:          NewGate(problem, trust),
			activeBlocks: activeBlocks,
			totalBlocks:  totalBlocks,
		}

		// Width 0 is unconstructible (bitvec.New panics by design), so
		// non-positive and absurd widths become the nil-vector case.
		var x *bitvec.Vector
		if width >= 1 && width <= 4096 {
			x = bitvec.New(width)
			for i := 0; i < width && i/8 < len(bits); i++ {
				x.Set(i, int(bits[i/8]>>(uint(i)%8))&1)
			}
		}
		s := gpusim.Solution{X: x, Energy: energy, Device: device, Block: block}

		slot, inserted, retarget := gate.ingest(host, s)
		if retarget && (slot < 0 || slot >= totalBlocks) {
			t.Fatalf("retarget of unaddressable slot %d", slot)
		}
		if inserted {
			if x == nil || x.Len() != n {
				t.Fatal("structurally invalid publication inserted")
			}
			if energy == ga.UnknownEnergy {
				t.Fatal("unknown-energy sentinel inserted as a device energy")
			}
			if !trust && problem.Energy(x) != energy {
				t.Fatalf("validated insert of a lying energy: claimed %d, true %d",
					energy, problem.Energy(x))
			}
		}
		if err := host.Pool().CheckInvariants(); err != nil {
			t.Fatalf("pool invariants broken after ingest: %v", err)
		}
		// A second identical ingest must never panic either (duplicate
		// path) and must keep invariants.
		gate.ingest(host, s)
		if err := host.Pool().CheckInvariants(); err != nil {
			t.Fatalf("pool invariants broken after duplicate ingest: %v", err)
		}
	})
}
