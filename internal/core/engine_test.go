package core

import (
	"testing"
	"time"

	"abs/internal/gpusim"
)

// TestEngineDynamicAttachDetach drives an Engine the way the serve
// scheduler does: start on one device of a two-device fleet, attach the
// second mid-run, detach the first, and finish — both devices' slot
// ranges must show work, and the run must end clean with no leaked
// goroutines (covered by the fault tests' leak checker pattern).
func TestEngineDynamicAttachDetach(t *testing.T) {
	p := randomProblem(64, 71)
	o := tinyOptions()
	o.NumGPUs = 2
	o.MaxDuration = 30 * time.Second // driver stops explicitly

	eng, err := NewEngine(p, o)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := gpusim.NewFleet(eng.Options().Device, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eng.MaxDevices() != 2 {
		t.Fatalf("MaxDevices = %d, want 2", eng.MaxDevices())
	}

	if err := eng.Attach(fleet.Device(0)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Attach(fleet.Device(0)); err == nil {
		t.Error("double attach of device 0 accepted")
	}
	if got := eng.AttachedDevices(); got != 1 {
		t.Fatalf("attached = %d, want 1", got)
	}

	pumpFor := func(d time.Duration) {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			eng.Pump(time.Now())
			time.Sleep(eng.Options().PollInterval)
		}
	}
	pumpFor(30 * time.Millisecond)

	if err := eng.Attach(fleet.Device(1)); err != nil {
		t.Fatal(err)
	}
	if got := eng.AttachedDevices(); got != 2 {
		t.Fatalf("attached = %d, want 2", got)
	}
	pumpFor(30 * time.Millisecond)

	if !eng.Detach(fleet.Device(0)) {
		t.Error("detach of attached device 0 reported false")
	}
	if eng.Detach(fleet.Device(0)) {
		t.Error("second detach of device 0 reported true")
	}
	pumpFor(30 * time.Millisecond)

	res := eng.Finish(false)
	if res == nil {
		t.Fatal("nil result")
	}
	if res2 := eng.Finish(false); res2 != res {
		t.Error("Finish not idempotent")
	}
	if err := eng.Attach(fleet.Device(0)); err == nil {
		t.Error("attach accepted after Finish")
	}

	bpd := eng.BlocksPerDevice()
	if res.Blocks != 2*bpd {
		t.Fatalf("Blocks = %d, want %d", res.Blocks, 2*bpd)
	}
	perDevFlips := map[int]uint64{}
	for _, bs := range res.BlockStats {
		perDevFlips[bs.Device] += bs.Flips
	}
	if perDevFlips[0] == 0 {
		t.Error("device 0 did no work while attached")
	}
	if perDevFlips[1] == 0 {
		t.Error("late-attached device 1 did no work")
	}
	if got := p.Energy(res.Best); got != res.BestEnergy {
		t.Errorf("best vector energy %d != reported %d", got, res.BestEnergy)
	}
}

// TestEngineSnapshotIsLive: Snapshot must be callable from a non-pump
// goroutine while the run is hot, and report monotonically advancing
// flips.
func TestEngineSnapshotIsLive(t *testing.T) {
	p := randomProblem(48, 72)
	o := tinyOptions()
	o.MaxDuration = 30 * time.Second

	eng, err := NewEngine(p, o)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := gpusim.NewFleet(eng.Options().Device, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Attach(fleet.Device(0)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { // concurrent status reader, as the HTTP handlers are
		defer close(done)
		var last uint64
		for i := 0; i < 20; i++ {
			pr := eng.Snapshot(time.Now())
			if pr.Flips < last {
				t.Error("snapshot flips went backwards")
				return
			}
			last = pr.Flips
			time.Sleep(2 * time.Millisecond)
		}
	}()
	deadline := time.Now().Add(80 * time.Millisecond)
	for time.Now().Before(deadline) {
		eng.Pump(time.Now())
		time.Sleep(eng.Options().PollInterval)
	}
	<-done
	res := eng.Finish(true)
	if !res.Cancelled {
		t.Error("Cancelled not propagated through Finish")
	}
	if res.Flips == 0 {
		t.Error("no flips recorded")
	}
}
