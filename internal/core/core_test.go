package core

import (
	"testing"
	"time"

	"abs/internal/bitvec"
	"abs/internal/gpusim"
	"abs/internal/qubo"
	"abs/internal/rng"
)

func randomProblem(n int, seed uint64) *qubo.Problem {
	p := qubo.New(n)
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			p.SetWeight(i, j, int16(r.Intn(201)-100))
		}
	}
	return p
}

func tinyOptions() Options {
	o := DefaultOptions()
	o.Device = gpusim.ScaledCPU(1)
	o.LocalSteps = 128
	return o
}

func TestSolveRequiresStopCondition(t *testing.T) {
	p := randomProblem(32, 1)
	o := tinyOptions()
	if _, err := Solve(p, o); err == nil {
		t.Fatal("Solve accepted options with no stop condition")
	}
}

func TestSolveValidatesOptions(t *testing.T) {
	p := randomProblem(32, 1)
	bad := tinyOptions()
	bad.MaxDuration = time.Millisecond
	bad.NumGPUs = 0
	if _, err := Solve(p, bad); err == nil {
		t.Error("NumGPUs=0 accepted")
	}
	bad = tinyOptions()
	bad.MaxDuration = time.Millisecond
	bad.LocalSteps = -1
	if _, err := Solve(p, bad); err == nil {
		t.Error("negative LocalSteps accepted")
	}
	bad = tinyOptions()
	bad.MaxDuration = time.Millisecond
	bad.WindowMin, bad.WindowMax = 10, 5
	if _, err := Solve(p, bad); err == nil {
		t.Error("inverted window range accepted")
	}
	bad = tinyOptions()
	bad.MaxDuration = time.Millisecond
	bad.BitsPerThread = 1
	if _, err := Solve(randomProblem(2048, 2), bad); err == nil {
		t.Error("infeasible block shape accepted")
	}
}

func TestSolveFindsExactOptimumSmall(t *testing.T) {
	p := randomProblem(24, 3)
	_, optE, err := qubo.ExactSolve(p)
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.TargetEnergy = &optE
	o.MaxDuration = 10 * time.Second // safety net; expected to hit target fast
	res, err := Solve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatalf("did not reach optimum %d; best %d", optE, res.BestEnergy)
	}
	if res.BestEnergy > optE {
		t.Errorf("best energy %d worse than target %d", res.BestEnergy, optE)
	}
	if got := p.Energy(res.Best); got != res.BestEnergy {
		t.Errorf("best vector energy %d != reported %d", got, res.BestEnergy)
	}
}

func TestSolveStopsOnDuration(t *testing.T) {
	p := randomProblem(64, 4)
	o := tinyOptions()
	o.MaxDuration = 50 * time.Millisecond
	start := time.Now()
	res, err := Solve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReachedTarget {
		t.Error("ReachedTarget true without a target")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("duration stop took %v", elapsed)
	}
	if res.Flips == 0 {
		t.Error("no flips performed in 50ms")
	}
	if res.Evaluated != res.Flips*64 {
		t.Errorf("Evaluated = %d, want Flips·n = %d", res.Evaluated, res.Flips*64)
	}
	if res.SearchRate <= 0 {
		t.Error("search rate not computed")
	}
}

func TestSolveStopsOnFlipBudget(t *testing.T) {
	p := randomProblem(64, 5)
	o := tinyOptions()
	o.MaxFlips = 10000
	o.MaxDuration = 10 * time.Second // safety net
	res, err := Solve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips < 10000 {
		t.Errorf("stopped at %d flips, budget 10000", res.Flips)
	}
	// Blocks finish their current round, so some overshoot is expected,
	// but it should be bounded by roughly blocks · round length.
	slack := uint64(res.Blocks*o.LocalSteps*4 + 65536)
	if res.Flips > o.MaxFlips+slack {
		t.Errorf("flip overshoot too large: %d >> %d", res.Flips, o.MaxFlips)
	}
}

func TestSolveImprovesOverRandom(t *testing.T) {
	p := randomProblem(128, 6)
	o := tinyOptions()
	o.MaxDuration = 200 * time.Millisecond
	res, err := Solve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	// A dense random instance with symmetric weights has strongly
	// negative optima; any functioning search lands well below zero.
	if res.BestEnergy >= 0 {
		t.Errorf("best energy %d did not improve below 0", res.BestEnergy)
	}
	if res.Inserted == 0 {
		t.Error("no solutions admitted to the pool")
	}
}

func TestSolveBlockCountMatchesOccupancy(t *testing.T) {
	p := randomProblem(256, 7)
	o := tinyOptions()
	o.Device = gpusim.ScaledCPU(2)
	o.NumGPUs = 2
	o.BitsPerThread = 16
	o.MaxDuration = 30 * time.Millisecond
	res, err := Solve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	occ, err := o.Device.Occupancy(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != occ.ActiveBlocks*2 {
		t.Errorf("blocks = %d, want %d", res.Blocks, occ.ActiveBlocks*2)
	}
	if res.Occupancy.ThreadsPerBlock != occ.ThreadsPerBlock {
		t.Error("occupancy not propagated to result")
	}
	if res.ModelledRate <= 0 {
		t.Error("modelled rate missing")
	}
}

func TestSolveAutoSelectsBitsPerThread(t *testing.T) {
	p := randomProblem(1024, 8)
	o := tinyOptions()
	o.MaxDuration = 20 * time.Millisecond
	res, err := Solve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	// Auto-selection must pick the modelled best (p=16 for 1k bits).
	if res.Occupancy.BitsPerThread != 16 {
		t.Errorf("auto bits/thread = %d, want 16", res.Occupancy.BitsPerThread)
	}
}

// The §2.1 window ladder itself now lives in internal/backend
// (WindowFor) and is unit-tested there; nothing Options-specific
// remains to cover here.

func TestSolveSingleBlockConfiguration(t *testing.T) {
	// A device trimmed to one resident block must still run the whole
	// host/device protocol and produce a verified solution. (Runs are
	// not bit-reproducible even with one block: the host generates new
	// targets as solutions arrive, and how many rounds fit between
	// target updates depends on scheduling — the framework is
	// asynchronous by design, §3.)
	p := randomProblem(96, 9)
	o := tinyOptions()
	o.Device = gpusim.ScaledCPU(1)
	o.Device.MaxBlocksPerSM = 1 // force exactly one block
	o.BitsPerThread = 1
	o.Device.MaxThreadsPerBlock = 96
	o.Device.MaxThreadsPerSM = 96
	o.Device.MaxWarpsPerSM = 3
	o.MaxFlips = 20000
	o.MaxDuration = 10 * time.Second
	o.Seed = 42
	res, err := Solve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 1 {
		t.Fatalf("expected 1 block, got %d", res.Blocks)
	}
	if res.BestEnergy >= 0 {
		t.Errorf("single block failed to improve: %d", res.BestEnergy)
	}
	if got := p.Energy(res.Best); got != res.BestEnergy {
		t.Errorf("best vector energy %d != reported %d", got, res.BestEnergy)
	}
}

func TestPaperOptionsShape(t *testing.T) {
	o := PaperOptions()
	if o.NumGPUs != 4 || o.Device.SMs != 68 {
		t.Errorf("paper options wrong: %d GPUs, %d SMs", o.NumGPUs, o.Device.SMs)
	}
}

func TestSolveAutoSelectsSparseStorage(t *testing.T) {
	// A sparse graph-like instance must auto-select the adjacency
	// engine; a dense instance the paper kernel.
	sparse := qubo.New(200)
	r := rng.New(31)
	for e := 0; e < 400; e++ {
		i, j := r.Intn(200), r.Intn(200)
		if i != j {
			sparse.SetWeight(i, j, int16(r.Intn(5)+1))
		}
	}
	for i := 0; i < 200; i++ {
		sparse.SetWeight(i, i, int16(-r.Intn(10)))
	}
	o := tinyOptions()
	o.MaxDuration = 50 * time.Millisecond
	res, err := Solve(sparse, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Storage != StorageSparse {
		t.Errorf("storage = %v, want sparse", res.Storage)
	}
	if res.EvaluatedPerFlip >= 200 {
		t.Errorf("sparse EvaluatedPerFlip = %v", res.EvaluatedPerFlip)
	}

	res2, err := Solve(randomProblem(64, 32), o)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Storage != StorageDense {
		t.Errorf("dense instance got storage %v", res2.Storage)
	}
}

func TestSolveForcedStorageAgreesOnQuality(t *testing.T) {
	// Dense and sparse engines implement the same mathematics; on a
	// small instance both must reach the exact optimum.
	p := randomProblem(20, 33)
	_, optE, err := qubo.ExactSolve(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Storage{StorageDense, StorageSparse} {
		o := tinyOptions()
		o.Storage = st
		o.TargetEnergy = &optE
		o.MaxDuration = 10 * time.Second
		res, err := Solve(p, o)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if !res.ReachedTarget {
			t.Errorf("%v engine missed optimum %d (best %d)", st, optE, res.BestEnergy)
		}
	}
}

func TestStorageString(t *testing.T) {
	if StorageAuto.String() != "auto" || StorageDense.String() != "dense" ||
		StorageSparse.String() != "sparse" || Storage(9).String() == "" {
		t.Error("Storage.String wrong")
	}
}

func TestSolveProgressCallback(t *testing.T) {
	p := randomProblem(64, 50)
	o := tinyOptions()
	o.MaxDuration = 300 * time.Millisecond
	o.ProgressEvery = 50 * time.Millisecond
	var calls int
	var lastFlips uint64
	o.Progress = func(pr Progress) {
		calls++
		if pr.Flips < lastFlips {
			t.Error("flip counter went backwards")
		}
		lastFlips = pr.Flips
		if pr.Elapsed <= 0 {
			t.Error("elapsed not set")
		}
	}
	if _, err := Solve(p, o); err != nil {
		t.Fatal(err)
	}
	if calls < 1 { // full-suite CPU contention can starve the cadence; one call must still fire
		t.Errorf("progress never called in 300ms at 50ms cadence (calls=%d)", calls)
	}
}

func TestSolveWarmStart(t *testing.T) {
	p := randomProblem(40, 51)
	// Get a decent solution first, then warm-start a second run with it
	// and confirm the pool immediately contains its region: the warm
	// run's best must be at least as good as the seed's energy.
	o := tinyOptions()
	o.MaxDuration = 150 * time.Millisecond
	first, err := Solve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	o2 := tinyOptions()
	o2.MaxDuration = 100 * time.Millisecond
	o2.WarmStarts = []*bitvec.Vector{first.Best}
	second, err := Solve(p, o2)
	if err != nil {
		t.Fatal(err)
	}
	if second.BestEnergy > first.BestEnergy {
		t.Errorf("warm-started run (%d) worse than its seed (%d)",
			second.BestEnergy, first.BestEnergy)
	}
}

func TestSolveWarmStartValidation(t *testing.T) {
	p := randomProblem(16, 52)
	o := tinyOptions()
	o.MaxDuration = time.Millisecond
	o.WarmStarts = []*bitvec.Vector{bitvec.New(7)}
	if _, err := Solve(p, o); err == nil {
		t.Error("wrong-length warm start accepted")
	}
	o.WarmStarts = []*bitvec.Vector{nil}
	if _, err := Solve(p, o); err == nil {
		t.Error("nil warm start accepted")
	}
}

func TestBlockStatsRecorded(t *testing.T) {
	p := randomProblem(96, 60)
	o := tinyOptions()
	o.Device = gpusim.ScaledCPU(1)
	o.MaxDuration = 120 * time.Millisecond
	res, err := Solve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BlockStats) != res.Blocks {
		t.Fatalf("got %d block stats for %d blocks", len(res.BlockStats), res.Blocks)
	}
	var totalFlips, totalPublished, totalInserted uint64
	windows := map[int]bool{}
	for i, bs := range res.BlockStats {
		if bs.Device != 0 {
			t.Errorf("block %d on device %d, want 0", i, bs.Device)
		}
		if bs.Window < 1 || bs.Window > 96 {
			t.Errorf("block %d window %d out of range", i, bs.Window)
		}
		windows[bs.Window] = true
		totalFlips += bs.Flips
		totalPublished += bs.Published
		totalInserted += bs.Inserted
	}
	// Per-block flips may lag the aggregate by at most one in-flight
	// round per block (blocks add to the aggregate per round).
	if totalFlips > res.Flips {
		t.Errorf("per-block flips %d exceed aggregate %d", totalFlips, res.Flips)
	}
	if res.Flips-totalFlips > uint64(res.Blocks*o.LocalSteps*2) {
		t.Errorf("per-block flips %d lag aggregate %d too far", totalFlips, res.Flips)
	}
	if totalPublished == 0 {
		t.Error("no block published anything")
	}
	if totalInserted != res.Inserted {
		t.Errorf("per-block inserted %d != host inserted %d", totalInserted, res.Inserted)
	}
	if len(windows) < 2 && res.Blocks > 4 {
		t.Error("window ladder has a single rung across many blocks")
	}
}
