package qubo

import (
	"math/bits"

	"abs/internal/bitvec"
)

// Phi is the φ function of Eq. (3): φ(0) = +1, φ(1) = −1. Equivalently
// φ(x) = 1 − 2x. It maps a bit to the sign its flip applies to the
// neighbouring Δ values.
func Phi(bit int) int64 { return int64(1 - 2*bit) }

// Energy evaluates Eq. (1) directly in O(n²):
//
//	E(X) = Σ_{i,j} W_ij x_i x_j
//
// with every off-diagonal pair counted twice. This is the naive
// evaluation whose cost motivates the whole paper; the solver uses it
// only to initialize or cross-check, never in the search loop.
func (p *Problem) Energy(x *bitvec.Vector) int64 {
	p.checkLen(x)
	// Only rows with x_i = 1 contribute. Within such a row, the diagonal
	// contributes W_ii once and every W_ij with j > i, x_j = 1
	// contributes twice (once as (i,j), once as (j,i)).
	ones := x.Ones(make([]int, 0, x.OnesCount()))
	var e int64
	for oi, i := range ones {
		row := p.Row(i)
		e += int64(row[i])
		var rowSum int64
		for _, j := range ones[oi+1:] {
			rowSum += int64(row[j])
		}
		e += 2 * rowSum
	}
	return e
}

// Delta evaluates Δ_k(X) = E(flip_k(X)) − E(X) directly in O(n) using
// Eq. (4):
//
//	Δ_k(X) = φ(x_k) · (2 Σ_{i≠k} W_ki x_i + W_kk)
func (p *Problem) Delta(x *bitvec.Vector, k int) int64 {
	p.checkLen(x)
	row := p.Row(k)
	var s int64
	words := x.Words()
	for wi, w := range words {
		base := wi * 64
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			if i != k {
				s += int64(row[i])
			}
			w &= w - 1
		}
	}
	return Phi(x.Bit(k)) * (2*s + int64(row[k]))
}

// DeltaAll fills dst (length n) with Δ_k(X) for every k, in O(n²) total
// — O(n) per neighbour, matching the initialization cost of Algorithm 3.
// It allocates when dst is nil or mis-sized.
func (p *Problem) DeltaAll(x *bitvec.Vector, dst []int64) []int64 {
	p.checkLen(x)
	if len(dst) != p.n {
		dst = make([]int64, p.n)
	}
	for k := 0; k < p.n; k++ {
		dst[k] = p.Delta(x, k)
	}
	return dst
}

func (p *Problem) checkLen(x *bitvec.Vector) {
	if x.Len() != p.n {
		panic("qubo: vector length does not match problem size")
	}
}
