package qubo

import (
	"testing"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

func TestChooseRep(t *testing.T) {
	for _, tc := range []struct {
		density float64
		want    Rep
	}{
		{0, RepSparse},
		{0.01, RepSparse},
		{DefaultSparseDensityThreshold - 1e-9, RepSparse},
		{DefaultSparseDensityThreshold, RepDense},
		{0.9, RepDense},
		{1, RepDense},
	} {
		if got := ChooseRep(tc.density); got != tc.want {
			t.Errorf("ChooseRep(%v) = %v, want %v", tc.density, got, tc.want)
		}
	}
	if RepDense.String() != "dense" || RepSparse.String() != "sparse" {
		t.Error("Rep strings wrong")
	}
}

func TestNewAutoZeroStatePicksByDensity(t *testing.T) {
	sparseP := sparseRandom(64, 0.05, 1)
	if _, ok := NewAutoZeroState(sparseP).(*SparseState); !ok {
		t.Errorf("density %.3f selected dense engine", sparseP.Density())
	}
	denseP := sparseRandom(64, 0.9, 2)
	if _, ok := NewAutoZeroState(denseP).(*State); !ok {
		t.Errorf("density %.3f selected sparse engine", denseP.Density())
	}
}

func TestNewAutoStateMatchesDirectEnergy(t *testing.T) {
	for _, density := range []float64{0.05, 0.9} {
		p := sparseRandom(48, density, 3)
		x := bitvec.Random(48, rng.New(4))
		s := NewAutoState(p, x)
		if s.Energy() != p.Energy(x) {
			t.Errorf("density %v: auto engine E = %d, direct %d", density, s.Energy(), p.Energy(x))
		}
	}
}

// TestCrossRepresentationTrajectory is the PR's flip-for-flip
// equivalence gate: the same seeded offset-window trajectory executed
// on the dense and sparse engines must select the same bits and
// produce identical energies after every single flip, on instances
// from well below to well above the auto threshold.
func TestCrossRepresentationTrajectory(t *testing.T) {
	for _, tc := range []struct {
		n       int
		density float64
		l       int
	}{
		{96, 0.02, 7},
		{96, 0.10, 16},
		{128, 0.30, 32},
		{64, 0.95, 64}, // fully dense: sparse path must still agree
	} {
		p := sparseRandom(tc.n, tc.density, uint64(tc.n)+uint64(tc.l))
		dense := NewZeroState(p)
		sparse := NewSparseZeroState(Sparsify(p))
		// Two independent policies with identical state: selection reads
		// only the Δ vector, which must stay identical step by step.
		dPol := &offsetWindowForTest{l: tc.l}
		sPol := &offsetWindowForTest{l: tc.l}
		for step := 0; step < 400; step++ {
			dk := dPol.selectBit(dense)
			sk := sPol.selectBit(sparse)
			if dk != sk {
				t.Fatalf("%+v step %d: dense selected %d, sparse %d", tc, step, dk, sk)
			}
			dense.Flip(dk)
			sparse.Flip(sk)
			if dense.Energy() != sparse.Energy() {
				t.Fatalf("%+v step %d: energies diverged: dense %d, sparse %d",
					tc, step, dense.Energy(), sparse.Energy())
			}
		}
		for k := 0; k < tc.n; k++ {
			if dense.Delta(k) != sparse.Delta(k) {
				t.Fatalf("%+v: Δ_%d diverged: dense %d, sparse %d",
					tc, k, dense.Delta(k), sparse.Delta(k))
			}
		}
		if err := sparse.CheckConsistency(); err != nil {
			t.Errorf("%+v: %v", tc, err)
		}
	}
}

// offsetWindowForTest reimplements the search.OffsetWindow scan locally
// (qubo cannot import search): window minimum with earliest-position
// tie-break, offset advancing by l.
type offsetWindowForTest struct {
	l      int
	offset int
}

func (p *offsetWindowForTest) selectBit(s Engine) int {
	n := s.N()
	l := p.l
	if l > n {
		l = n
	}
	d := s.Deltas()
	best := p.offset % n
	bestD := d[best]
	for t := 1; t < l; t++ {
		i := p.offset + t
		if i >= n {
			i -= n
		}
		if d[i] < bestD {
			best, bestD = i, d[i]
		}
	}
	p.offset = (p.offset + l) % n
	return best
}
