package qubo

import (
	"fmt"
	"math"

	"abs/internal/bitvec"
)

// Sparse is the adjacency-list view of a QUBO instance: for each
// variable, the list of off-diagonal neighbours with non-zero weight,
// plus the diagonal. It shares no storage with the dense Problem and
// is immutable after construction, so any number of search units can
// read it concurrently.
type Sparse struct {
	n    int
	name string
	diag []int16
	// neighbours of i: indices nbrIdx[start[i]:start[i+1]] with weights
	// nbrW at the same positions (CSR layout — one allocation each).
	start  []int32
	nbrIdx []int32
	nbrW   []int16
	// avgDegree is cached for EvaluatedPerFlip.
	avgDegree float64
}

// Sparsify builds the adjacency view of p.
func Sparsify(p *Problem) *Sparse {
	n := p.n
	s := &Sparse{n: n, name: p.name, diag: make([]int16, n), start: make([]int32, n+1)}
	nnz := 0
	for i := 0; i < n; i++ {
		s.diag[i] = p.w[i*n+i]
		row := p.Row(i)
		for j, w := range row {
			if w != 0 && j != i {
				nnz++
			}
		}
		s.start[i+1] = int32(nnz)
	}
	s.nbrIdx = make([]int32, nnz)
	s.nbrW = make([]int16, nnz)
	pos := 0
	for i := 0; i < n; i++ {
		row := p.Row(i)
		for j, w := range row {
			if w != 0 && j != i {
				s.nbrIdx[pos] = int32(j)
				s.nbrW[pos] = w
				pos++
			}
		}
	}
	s.avgDegree = float64(nnz) / float64(n)
	return s
}

// N returns the number of variables.
func (s *Sparse) N() int { return s.n }

// Name returns the instance label.
func (s *Sparse) Name() string { return s.name }

// Degree returns the number of non-zero off-diagonal weights of i.
func (s *Sparse) Degree(i int) int { return int(s.start[i+1] - s.start[i]) }

// AvgDegree returns the mean degree.
func (s *Sparse) AvgDegree() float64 { return s.avgDegree }

// Density returns the off-diagonal non-zero fraction.
func (s *Sparse) Density() float64 {
	if s.n <= 1 {
		return 0
	}
	return s.avgDegree / float64(s.n-1)
}

// Energy computes E(x) directly from the adjacency lists in O(nnz):
// set diagonals once, each off-diagonal pair (i, j) with both bits set
// twice (W_ij + W_ji). The sparse counterpart of Problem.Energy and the
// oracle for the CSR round-trip fuzz test.
func (s *Sparse) Energy(x *bitvec.Vector) int64 {
	if x.Len() != s.n {
		panic("qubo: vector length does not match problem size")
	}
	var e int64
	for i := 0; i < s.n; i++ {
		if x.Bit(i) == 0 {
			continue
		}
		e += int64(s.diag[i])
		for p := s.start[i]; p < s.start[i+1]; p++ {
			j := int(s.nbrIdx[p])
			if j > i && x.Bit(j) == 1 {
				e += 2 * int64(s.nbrW[p])
			}
		}
	}
	return e
}

// DeltaDirect computes Δ_k(x) (Eq. 4) directly from k's neighbour
// list in O(deg k), the sparse counterpart of Problem.Delta.
func (s *Sparse) DeltaDirect(x *bitvec.Vector, k int) int64 {
	var sum int64
	for p := s.start[k]; p < s.start[k+1]; p++ {
		if x.Bit(int(s.nbrIdx[p])) == 1 {
			sum += int64(s.nbrW[p])
		}
	}
	return Phi(x.Bit(k)) * (2*sum + int64(s.diag[k]))
}

// Diag returns the diagonal weight W_kk.
func (s *Sparse) Diag(k int) int16 { return s.diag[k] }

// Neighbours returns bit k's neighbour indices and weights as shared
// read-only CSR segments; callers must not modify them.
func (s *Sparse) Neighbours(k int) ([]int32, []int16) {
	lo, hi := s.start[k], s.start[k+1]
	return s.nbrIdx[lo:hi], s.nbrW[lo:hi]
}

// SparseState is the adjacency-based incremental engine: identical
// update formulas to State (Eqs. 5–6), but a flip of bit k walks only
// k's neighbour list. Best-solution tracking is neighbour-local: the
// candidates considered per flip are the new solution and its
// re-evaluated neighbours (1 + deg(k) solutions), which is what
// EvaluatedPerFlip reports.
type SparseState struct {
	sp     *Sparse
	x      *bitvec.Vector
	delta  []int64
	energy int64

	bestVec *bitvec.Vector
	bestE   int64
	flips   uint64
}

// NewSparseZeroState returns a SparseState at the all-zero vector
// (E = 0, Δ_i = W_ii), initialized in O(n).
func NewSparseZeroState(sp *Sparse) *SparseState {
	s := &SparseState{
		sp:    sp,
		x:     bitvec.New(sp.n),
		delta: make([]int64, sp.n),
		bestE: math.MaxInt64,
	}
	for i := range s.delta {
		s.delta[i] = int64(sp.diag[i])
	}
	return s
}

// NewSparseState returns a SparseState positioned at x, computing
// energy and deltas from the adjacency lists in O(nnz).
func NewSparseState(sp *Sparse, x *bitvec.Vector) *SparseState {
	if x.Len() != sp.n {
		panic("qubo: vector length does not match problem size")
	}
	s := NewSparseZeroState(sp)
	// Walk from 0 to x; each flip is O(deg). Cheaper than evaluating
	// Eq. (4) per variable and reuses the tested update path.
	for _, k := range x.Ones(nil) {
		s.Flip(k)
	}
	s.flips = 0
	s.bestE = math.MaxInt64
	s.bestVec = nil
	return s
}

// N implements Engine.
func (s *SparseState) N() int { return s.sp.n }

// Energy implements Engine.
func (s *SparseState) Energy() int64 { return s.energy }

// Delta implements Engine.
func (s *SparseState) Delta(k int) int64 { return s.delta[k] }

// Deltas implements Engine.
func (s *SparseState) Deltas() []int64 { return s.delta }

// Flips implements Engine.
func (s *SparseState) Flips() uint64 { return s.flips }

// EvaluatedPerFlip implements Engine: the new solution plus its
// re-evaluated neighbours.
func (s *SparseState) EvaluatedPerFlip() float64 { return 1 + s.sp.avgDegree }

// X implements Engine.
func (s *SparseState) X() *bitvec.Vector { return s.x }

// Snapshot implements Engine.
func (s *SparseState) Snapshot() *bitvec.Vector { return s.x.Clone() }

// Flip implements Engine in O(deg(k)).
func (s *SparseState) Flip(k int) {
	sp := s.sp
	d := s.delta
	sk := int64(1 - 2*s.x.Bit(k))
	oldDk := d[k]

	lo, hi := sp.start[k], sp.start[k+1]
	minI, minD := -1, int64(math.MaxInt64)
	for p := lo; p < hi; p++ {
		i := int(sp.nbrIdx[p])
		xi := int64(s.x.Bit(i))
		d[i] += 2 * sk * (1 - 2*xi) * int64(sp.nbrW[p])
		if d[i] < minD {
			minI, minD = i, d[i]
		}
	}
	d[k] = -oldDk
	s.energy += oldDk
	s.x.Flip(k)
	s.flips++

	if s.energy < s.bestE {
		s.recordBest(s.x, s.energy)
	}
	if minI >= 0 && s.energy+minD < s.bestE {
		s.recordBestNeighbour(minI, s.energy+minD)
	}
}

func (s *SparseState) recordBest(v *bitvec.Vector, e int64) {
	if s.bestVec == nil {
		s.bestVec = v.Clone()
	} else {
		s.bestVec.CopyFrom(v)
	}
	s.bestE = e
}

func (s *SparseState) recordBestNeighbour(i int, e int64) {
	if s.bestVec == nil {
		s.bestVec = s.x.Clone()
	} else {
		s.bestVec.CopyFrom(s.x)
	}
	s.bestVec.Flip(i)
	s.bestE = e
}

// Best implements Engine.
func (s *SparseState) Best() (*bitvec.Vector, int64, bool) {
	if s.bestVec == nil || s.bestE == math.MaxInt64 {
		return nil, 0, false
	}
	return s.bestVec.Clone(), s.bestE, true
}

// BestEnergy implements Engine.
func (s *SparseState) BestEnergy() int64 { return s.bestE }

// ResetBest implements Engine.
func (s *SparseState) ResetBest() { s.bestE = math.MaxInt64 }

// NoteCurrentAsBest implements Engine.
func (s *SparseState) NoteCurrentAsBest() { s.recordBest(s.x, s.energy) }

// CheckConsistency recomputes energy and deltas from the adjacency
// lists and compares; the sparse analogue of State.CheckConsistency.
func (s *SparseState) CheckConsistency() error {
	if e := s.sp.Energy(s.x); e != s.energy {
		return fmt.Errorf("qubo: sparse energy drift: incremental %d, direct %d", s.energy, e)
	}
	for k := 0; k < s.sp.n; k++ {
		if want := s.sp.DeltaDirect(s.x, k); want != s.delta[k] {
			return fmt.Errorf("qubo: sparse delta drift at %d: incremental %d, direct %d",
				k, s.delta[k], want)
		}
	}
	return nil
}
