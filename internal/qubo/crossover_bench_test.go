package qubo

import (
	"fmt"
	"testing"

	"abs/internal/rng"
)

// BenchmarkFlipCrossover measures the per-flip cost of the dense and
// sparse engines across densities at fixed n. The density at which the
// sparse O(deg) flip stops beating the dense O(n) row scan is the
// measurement behind DefaultSparseDensityThreshold; see DESIGN.md §9.
func BenchmarkFlipCrossover(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("dense-n%d", n), func(b *testing.B) {
			p := sparseRandom(n, 1.0, 1)
			s := NewZeroState(p)
			r := rng.New(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Flip(r.Intn(n))
			}
		})
		for _, density := range []float64{0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.35, 0.50} {
			b.Run(fmt.Sprintf("sparse-n%d-d%g", n, density), func(b *testing.B) {
				p := sparseRandom(n, density, 1)
				s := NewSparseZeroState(Sparsify(p))
				r := rng.New(2)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Flip(r.Intn(n))
				}
			})
		}
	}
}
