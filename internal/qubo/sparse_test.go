package qubo

import (
	"testing"
	"testing/quick"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

// sparseRandom builds a random problem with the given expected density.
func sparseRandom(n int, density float64, seed uint64) *Problem {
	p := New(n)
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if r.Float64() < density {
				w := int16(r.Intn(201) - 100)
				if w == 0 {
					w = 1
				}
				p.SetWeight(i, j, w)
			}
		}
	}
	return p
}

func TestSparsifyStructure(t *testing.T) {
	p := New(4)
	p.SetWeight(0, 0, 5)
	p.SetWeight(0, 2, -3)
	p.SetWeight(1, 3, 7)
	sp := Sparsify(p)
	if sp.N() != 4 {
		t.Fatalf("N = %d", sp.N())
	}
	wantDeg := []int{1, 1, 1, 1} // 0-2 and 1-3, each endpoint degree 1
	for i, want := range wantDeg {
		if sp.Degree(i) != want {
			t.Errorf("degree[%d] = %d, want %d", i, sp.Degree(i), want)
		}
	}
	if sp.AvgDegree() != 1 {
		t.Errorf("avg degree = %v", sp.AvgDegree())
	}
	if sp.Density() != 1.0/3.0 {
		t.Errorf("density = %v, want 1/3", sp.Density())
	}
}

func TestSparseZeroState(t *testing.T) {
	p := sparseRandom(30, 0.2, 1)
	sp := Sparsify(p)
	s := NewSparseZeroState(sp)
	if s.Energy() != 0 {
		t.Errorf("E(0) = %d", s.Energy())
	}
	for k := 0; k < 30; k++ {
		if s.Delta(k) != int64(p.Weight(k, k)) {
			t.Errorf("Δ_%d(0) = %d, want %d", k, s.Delta(k), p.Weight(k, k))
		}
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestSparseMatchesDense is the core equivalence property: the sparse
// and dense engines must agree exactly on energy and deltas through an
// arbitrary flip sequence.
func TestSparseMatchesDense(t *testing.T) {
	p := sparseRandom(48, 0.15, 2)
	sp := Sparsify(p)
	dense := NewZeroState(p)
	sparse := NewSparseZeroState(sp)
	r := rng.New(3)
	for step := 0; step < 500; step++ {
		k := r.Intn(48)
		dense.Flip(k)
		sparse.Flip(k)
		if dense.Energy() != sparse.Energy() {
			t.Fatalf("step %d: dense E %d, sparse E %d", step, dense.Energy(), sparse.Energy())
		}
	}
	for k := 0; k < 48; k++ {
		if dense.Delta(k) != sparse.Delta(k) {
			t.Errorf("Δ_%d: dense %d, sparse %d", k, dense.Delta(k), sparse.Delta(k))
		}
	}
	if err := sparse.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestNewSparseStateAtVector(t *testing.T) {
	p := sparseRandom(40, 0.3, 4)
	sp := Sparsify(p)
	x := bitvec.Random(40, rng.New(5))
	s := NewSparseState(sp, x)
	if s.Energy() != p.Energy(x) {
		t.Errorf("sparse E = %d, direct %d", s.Energy(), p.Energy(x))
	}
	if s.Flips() != 0 {
		t.Error("construction flips leaked into the counter")
	}
	if _, _, ok := s.Best(); ok {
		t.Error("construction left residual best")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestSparseBestTracking(t *testing.T) {
	p := New(3)
	p.SetWeight(0, 0, 5)
	p.SetWeight(1, 1, 4)
	p.SetWeight(2, 2, -9)
	p.SetWeight(0, 2, 1) // make 2 a neighbour of 0 so the flip sees it
	sp := Sparsify(p)
	s := NewSparseZeroState(sp)
	s.Flip(0)
	_, be, ok := s.Best()
	if !ok {
		t.Fatal("no best after flip")
	}
	// Neighbour-local tracking: flipping 0 re-evaluates neighbour 2:
	// E(101) = 5 − 9 + 2·1 = −2; X itself is 5. Best = −2.
	if be != -2 {
		t.Errorf("best = %d, want -2", be)
	}
	s.ResetBest()
	if _, _, ok := s.Best(); ok {
		t.Error("best survived reset")
	}
	s.NoteCurrentAsBest()
	if s.BestEnergy() != s.Energy() {
		t.Error("NoteCurrentAsBest wrong")
	}
}

func TestSparseEvaluatedPerFlip(t *testing.T) {
	p := sparseRandom(64, 0.1, 6)
	sp := Sparsify(p)
	s := NewSparseZeroState(sp)
	if got, want := s.EvaluatedPerFlip(), 1+sp.AvgDegree(); got != want {
		t.Errorf("EvaluatedPerFlip = %v, want %v", got, want)
	}
	d := NewZeroState(p)
	if d.EvaluatedPerFlip() != 64 {
		t.Errorf("dense EvaluatedPerFlip = %v", d.EvaluatedPerFlip())
	}
}

func TestQuickSparseDenseEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		n := 4 + int(seed%40)
		p := sparseRandom(n, 0.3, seed)
		dense := NewZeroState(p)
		sparse := NewSparseZeroState(Sparsify(p))
		r := rng.New(seed ^ 0xfeed)
		for i := 0; i < 100; i++ {
			k := r.Intn(n)
			dense.Flip(k)
			sparse.Flip(k)
			if dense.Energy() != sparse.Energy() {
				return false
			}
		}
		return sparse.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSparseStateRejectsBadVector(t *testing.T) {
	sp := Sparsify(sparseRandom(8, 0.5, 7))
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	NewSparseState(sp, bitvec.New(9))
}

func BenchmarkSparseFlipDeg16(b *testing.B) {
	// 4096 bits at ~16 average degree: the sparse engine's O(deg) flip
	// vs. the dense engine's O(n) (BenchmarkFlip4k ≈ 8 µs).
	p := sparseRandom(4096, 16.0/4096, 1)
	sp := Sparsify(p)
	s := NewSparseZeroState(sp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Flip(i & 4095)
	}
}
