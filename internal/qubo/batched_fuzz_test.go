package qubo

import (
	"testing"

	"abs/internal/rng"
)

// FuzzDenseKernel is the batched-kernel oracle: whatever flip sequence
// the fuzzer assembles — including adjacent re-flips and runs far
// longer than the tile width — the batched delta-evaluation kernel
// must agree with the scalar reference on every observable (energy,
// deltas, flip counter, best-solution sequence), and the batched
// state's invariants must survive CheckConsistency.
func FuzzDenseKernel(f *testing.F) {
	f.Add(uint64(1), []byte{0x00, 0x3f, 0x40, 0x41})
	f.Add(uint64(64), []byte{0xff, 0xff, 0xff})
	f.Add(uint64(7), []byte{0x10, 0x10, 0x10, 0x10}) // repeated bit
	f.Add(uint64(200), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, flips []byte) {
		n := 4 + int(seed%180) // crosses 0–2 full 64-wide tiles
		p := sparseRandom(n, 1.0, seed)
		scalar := newZeroStateMode(p, false)
		batched := newZeroStateMode(p, true)
		r := rng.New(seed ^ 0xabc)
		for step, b := range flips {
			// Mix payload-directed and window-minimum selections so the
			// fuzzer exercises both adversarial orders and the production
			// selection rule.
			var k int
			if b&1 == 0 {
				k = int(b>>1) % n
			} else {
				l := 1 + int(b>>1)%n
				offset := r.Intn(n)
				k = windowMinSelect(batched.Deltas(), offset, l)
				if ks := windowMinSelect(scalar.Deltas(), offset, l); ks != k {
					t.Fatalf("step %d: selection diverged: scalar %d, batched %d", step, ks, k)
				}
			}
			scalar.Flip(k)
			batched.Flip(k)
			if scalar.Energy() != batched.Energy() {
				t.Fatalf("step %d: energy scalar %d, batched %d",
					step, scalar.Energy(), batched.Energy())
			}
			if scalar.BestEnergy() != batched.BestEnergy() {
				t.Fatalf("step %d: best scalar %d, batched %d",
					step, scalar.BestEnergy(), batched.BestEnergy())
			}
		}
		sd, bd := scalar.Deltas(), batched.Deltas()
		for i := range sd {
			if sd[i] != bd[i] {
				t.Fatalf("Δ_%d: scalar %d, batched %d", i, sd[i], bd[i])
			}
		}
		if !scalar.X().Equal(batched.X()) {
			t.Fatal("solution vectors diverged")
		}
		sv, se, sok := scalar.Best()
		bv, be, bok := batched.Best()
		if sok != bok || se != be || (sok && !sv.Equal(bv)) {
			t.Fatalf("best diverged: scalar (%d,%v), batched (%d,%v)", se, sok, be, bok)
		}
		if err := batched.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	})
}
