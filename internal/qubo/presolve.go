package qubo

import (
	"fmt"

	"abs/internal/bitvec"
)

// Persistency implements the classic first-order persistency (variable
// fixing) rules for QUBO. Writing E(X) = Σ_i c_ii x_i + Σ_{i<j} c_ij
// x_i x_j with c_ii = W_ii and c_ij = 2·W_ij, variable i's contribution
// under any assignment of the others lies in
//
//	x_i · [ c_ii + Σ_j min(0, c_ij),  c_ii + Σ_j max(0, c_ij) ].
//
// If the lower end is ≥ 0, setting x_i = 1 can never reduce the energy,
// so x_i = 0 is optimal-safe; if the upper end is ≤ 0, x_i = 1 is
// optimal-safe. Such fixings shrink the instance before the heuristic
// runs — the preprocessing real QUBO solvers (e.g. qbsolv's roof-duality
// stage) apply.

// FixedValue is a per-variable presolve verdict.
type FixedValue int8

const (
	// Free means the rules could not fix the variable.
	Free FixedValue = -1
	// FixedZero and FixedOne mean an optimal solution exists with the
	// variable at that value.
	FixedZero FixedValue = 0
	FixedOne  FixedValue = 1
)

// Persistencies applies the first-order rules once and returns a
// verdict per variable.
func Persistencies(p *Problem) []FixedValue {
	n := p.N()
	out := make([]FixedValue, n)
	for i := 0; i < n; i++ {
		row := p.Row(i)
		lo := int64(row[i])
		hi := int64(row[i])
		for j, w := range row {
			if j == i || w == 0 {
				continue
			}
			c := 2 * int64(w)
			if c < 0 {
				lo += c
			} else {
				hi += c
			}
		}
		switch {
		case lo >= 0:
			out[i] = FixedZero
		case hi <= 0:
			out[i] = FixedOne
		default:
			out[i] = Free
		}
	}
	return out
}

// PresolveResult describes a reduction produced by Presolve.
type PresolveResult struct {
	// Reduced is the sub-instance over the free variables; nil when
	// every variable was fixed.
	Reduced *Problem
	// FreeVars maps reduced indices to original indices.
	FreeVars []int
	// Fixed holds the verdict for every original variable (Free for
	// those still in Reduced).
	Fixed []FixedValue
	// Offset is the energy contributed by the fixed variables:
	// E_original(X) = E_reduced(x_free) + Offset for assignments
	// respecting the fixings.
	Offset int64
}

// Presolve applies the persistency rules to a fixpoint — each fixing
// folds couplings into neighbouring diagonals, which can enable further
// fixings — and returns the reduced instance. It fails only if folding
// pushes a diagonal outside the 16-bit weight domain.
func Presolve(p *Problem) (*PresolveResult, error) {
	n := p.N()
	fixed := make([]FixedValue, n)
	for i := range fixed {
		fixed[i] = Free
	}
	// diag holds the working diagonal (with folded-in contributions
	// from variables fixed to one), in int64 to detect overflow only
	// when materializing.
	diag := make([]int64, n)
	for i := 0; i < n; i++ {
		diag[i] = int64(p.Weight(i, i))
	}

	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if fixed[i] != Free {
				continue
			}
			lo, hi := diag[i], diag[i]
			row := p.Row(i)
			for j, w := range row {
				if j == i || w == 0 || fixed[j] != Free {
					continue
				}
				c := 2 * int64(w)
				if c < 0 {
					lo += c
				} else {
					hi += c
				}
			}
			var v FixedValue
			switch {
			case lo >= 0:
				v = FixedZero
			case hi <= 0:
				v = FixedOne
			default:
				continue
			}
			fixed[i] = v
			changed = true
			if v == FixedOne {
				// Fold couplings to i into neighbours' diagonals.
				for j, w := range row {
					if j != i && w != 0 && fixed[j] == Free {
						diag[j] += 2 * int64(w)
					}
				}
			}
		}
	}

	res := &PresolveResult{Fixed: fixed}
	// Offset: energy of the fixed part. Σ over fixed-one variables of
	// their original diagonal plus pairwise couplings between fixed
	// ones.
	for i := 0; i < n; i++ {
		if fixed[i] != FixedOne {
			continue
		}
		res.Offset += int64(p.Weight(i, i))
		for j := i + 1; j < n; j++ {
			if fixed[j] == FixedOne {
				res.Offset += 2 * int64(p.Weight(i, j))
			}
		}
	}
	for i := 0; i < n; i++ {
		if fixed[i] == Free {
			res.FreeVars = append(res.FreeVars, i)
		}
	}
	if len(res.FreeVars) == 0 {
		return res, nil
	}
	reduced := New(len(res.FreeVars))
	reduced.SetName(p.Name() + "-presolved")
	for ri, i := range res.FreeVars {
		if diag[i] < -32768 || diag[i] > 32767 {
			return nil, fmt.Errorf("qubo: presolve folded diagonal %d to %d, outside 16-bit range", i, diag[i])
		}
		reduced.SetWeight(ri, ri, int16(diag[i]))
		for rj := ri + 1; rj < len(res.FreeVars); rj++ {
			j := res.FreeVars[rj]
			if w := p.Weight(i, j); w != 0 {
				reduced.SetWeight(ri, rj, w)
			}
		}
	}
	res.Reduced = reduced
	return res, nil
}

// Expand lifts a solution of the reduced instance back to the original
// variable space, filling fixed variables with their fixed values.
func (r *PresolveResult) Expand(reducedX *bitvec.Vector) (*bitvec.Vector, error) {
	if r.Reduced == nil {
		if reducedX != nil {
			return nil, fmt.Errorf("qubo: expand of fully-fixed presolve takes nil")
		}
	} else if reducedX == nil || reducedX.Len() != r.Reduced.N() {
		return nil, fmt.Errorf("qubo: expand needs a %d-bit reduced solution", r.Reduced.N())
	}
	x := bitvec.New(len(r.Fixed))
	for i, v := range r.Fixed {
		if v == FixedOne {
			x.Set(i, 1)
		}
	}
	for ri, i := range r.FreeVars {
		x.Set(i, reducedX.Bit(ri))
	}
	return x, nil
}
