package qubo

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"abs/internal/bitvec"
	"abs/internal/dkernel"
	"abs/internal/rng"
)

// assertStatesEqual compares every observable of the Engine surface the
// rest of the system depends on: trajectory equivalence means these
// match after every flip, not just at the end.
func assertStatesEqual(t *testing.T, step int, scalar, batched *State) {
	t.Helper()
	if scalar.Energy() != batched.Energy() {
		t.Fatalf("step %d: energy scalar %d, batched %d", step, scalar.Energy(), batched.Energy())
	}
	if scalar.Flips() != batched.Flips() {
		t.Fatalf("step %d: flips scalar %d, batched %d", step, scalar.Flips(), batched.Flips())
	}
	if scalar.BestEnergy() != batched.BestEnergy() {
		t.Fatalf("step %d: best energy scalar %d, batched %d",
			step, scalar.BestEnergy(), batched.BestEnergy())
	}
	sd, bd := scalar.Deltas(), batched.Deltas()
	for i := range sd {
		if sd[i] != bd[i] {
			t.Fatalf("step %d: Δ_%d scalar %d, batched %d", step, i, sd[i], bd[i])
		}
	}
	if !scalar.X().Equal(batched.X()) {
		t.Fatalf("step %d: solution vectors diverged", step)
	}
	sv, se, sok := scalar.Best()
	bv, be, bok := batched.Best()
	if sok != bok || se != be {
		t.Fatalf("step %d: best scalar (%d,%v), batched (%d,%v)", step, se, sok, be, bok)
	}
	if sok && !sv.Equal(bv) {
		t.Fatalf("step %d: best vectors diverged (same energy %d)", step, se)
	}
}

// windowMinSelect replicates search.OffsetWindow.Select inline: the
// first strict minimum over the circular window [offset, offset+l).
// The search package cannot be imported here (it imports qubo), so the
// policy's selection rule is reproduced to drive both engines with the
// exact flip sequence the production hot path would issue.
func windowMinSelect(d []int64, offset, l int) int {
	n := len(d)
	best, bestD := -1, int64(math.MaxInt64)
	for j := 0; j < l; j++ {
		i := offset + j
		if i >= n {
			i -= n
		}
		if d[i] < bestD {
			best, bestD = i, d[i]
		}
	}
	return best
}

// TestBatchedMatchesScalarTrajectory is the tentpole equivalence
// property: the batched kernel must pick the identical trajectory as
// the scalar reference when both run the production selection rule —
// an offset-window minimum over their own delta vectors. Any deviation
// in deltas, tie-breaking, or best-tracking diverges the walks.
func TestBatchedMatchesScalarTrajectory(t *testing.T) {
	for _, tc := range []struct {
		n      int
		window int
	}{
		{n: 63, window: 7},
		{n: 64, window: 16},
		{n: 65, window: 64},
		{n: 128, window: 32},
		{n: 200, window: 50},
		{n: 300, window: 300}, // full-width window: global argmin every step
	} {
		t.Run(fmt.Sprintf("n%d-w%d", tc.n, tc.window), func(t *testing.T) {
			p := sparseRandom(tc.n, 1.0, uint64(tc.n))
			scalar := newZeroStateMode(p, false)
			batched := newZeroStateMode(p, true)
			offset := 0
			for step := 0; step < 600; step++ {
				ks := windowMinSelect(scalar.Deltas(), offset, tc.window)
				kb := windowMinSelect(batched.Deltas(), offset, tc.window)
				if ks != kb {
					t.Fatalf("step %d: selection diverged: scalar %d, batched %d", step, ks, kb)
				}
				scalar.Flip(ks)
				batched.Flip(kb)
				assertStatesEqual(t, step, scalar, batched)
				offset = (offset + tc.window) % tc.n
			}
			if err := batched.CheckConsistency(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBatchedMatchesScalarRandomWalk covers flip sequences selection
// would never produce — repeated flips of the same bit, immediate
// undo, adversarial orders — where the sentinel restore logic is most
// stressed.
func TestBatchedMatchesScalarRandomWalk(t *testing.T) {
	p := sparseRandom(150, 1.0, 11)
	scalar := newZeroStateMode(p, false)
	batched := newZeroStateMode(p, true)
	r := rng.New(12)
	for step := 0; step < 800; step++ {
		var k int
		switch step % 5 {
		case 0, 1, 2:
			k = r.Intn(150)
		case 3:
			k = step % 150 // deterministic sweep
		default:
			k = (step - 1) % 150 // immediate re-flip of the previous sweep bit
		}
		scalar.Flip(k)
		batched.Flip(k)
		assertStatesEqual(t, step, scalar, batched)
	}
	if err := batched.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestBatchedFromArbitraryVector checks the NewState construction path
// (sign registers derived from a non-zero start) and reset semantics.
func TestBatchedFromArbitraryVector(t *testing.T) {
	p := sparseRandom(100, 1.0, 21)
	x := bitvec.Random(100, rng.New(22))
	scalar := newStateMode(p, x, false)
	batched := newStateMode(p, x, true)
	assertStatesEqual(t, -1, scalar, batched)
	r := rng.New(23)
	for step := 0; step < 300; step++ {
		k := r.Intn(100)
		scalar.Flip(k)
		batched.Flip(k)
		if step == 150 {
			scalar.ResetBest()
			batched.ResetBest()
			scalar.NoteCurrentAsBest()
			batched.NoteCurrentAsBest()
		}
		assertStatesEqual(t, step, scalar, batched)
	}
	if err := batched.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestQuickBatchedScalarEquivalence sweeps random sizes across tile
// boundaries and random window lengths — the quick.Check harness of
// the PR 5 cross-rep idiom applied to the two dense flip paths.
func TestQuickBatchedScalarEquivalence(t *testing.T) {
	f := func(seed uint64, wseed uint16) bool {
		n := 4 + int(seed%200) // straddles 0, 1, 2, 3 full tiles
		l := 1 + int(wseed)%n
		p := sparseRandom(n, 1.0, seed)
		scalar := newZeroStateMode(p, false)
		batched := newZeroStateMode(p, true)
		offset := int(seed % uint64(n))
		for step := 0; step < 120; step++ {
			k := windowMinSelect(scalar.Deltas(), offset, l)
			if k != windowMinSelect(batched.Deltas(), offset, l) {
				return false
			}
			scalar.Flip(k)
			batched.Flip(k)
			if scalar.Energy() != batched.Energy() ||
				scalar.BestEnergy() != batched.BestEnergy() {
				return false
			}
			offset = (offset + l) % n
		}
		sd, bd := scalar.Deltas(), batched.Deltas()
		for i := range sd {
			if sd[i] != bd[i] {
				return false
			}
		}
		return batched.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSetDenseKernelScalar checks the process-wide switch affects new
// constructions only, and that DenseKernelName tracks it.
func TestSetDenseKernelScalar(t *testing.T) {
	defer SetDenseKernelScalar(false)
	p := sparseRandom(70, 1.0, 31)

	SetDenseKernelScalar(true)
	if DenseKernelName() != "scalar" {
		t.Errorf("forced name = %q", DenseKernelName())
	}
	s1 := NewZeroState(p)
	if s1.batched {
		t.Error("scalar force ignored by NewZeroState")
	}

	SetDenseKernelScalar(false)
	if DenseKernelName() != dkernel.Name() {
		t.Errorf("default name = %q, want %q", DenseKernelName(), dkernel.Name())
	}
	s2 := NewZeroState(p)
	if !s2.batched {
		t.Error("batched default ignored by NewZeroState")
	}
	if !s1.batched && s2.batched {
		// Existing states keep their path: drive both and compare.
		r := rng.New(32)
		for step := 0; step < 200; step++ {
			k := r.Intn(70)
			s1.Flip(k)
			s2.Flip(k)
			assertStatesEqual(t, step, s1, s2)
		}
	}
}

// BenchmarkDenseKernel is the State-level microbenchmark pair behind
// BENCH_pr10.json: full Flip cost, batched vs the scalar reference, at
// paper-shape sizes.
func BenchmarkDenseKernel(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		p := sparseRandom(n, 1.0, 1)
		for _, mode := range []struct {
			name    string
			batched bool
		}{{"batched", true}, {"scalar", false}} {
			b.Run(fmt.Sprintf("%s-n%d", mode.name, n), func(b *testing.B) {
				s := newZeroStateMode(p, mode.batched)
				r := rng.New(2)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Flip(r.Intn(n))
				}
			})
		}
	}
}
