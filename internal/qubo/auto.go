package qubo

import "abs/internal/bitvec"

// Rep identifies an incremental-engine representation: the paper's
// dense Δ register file (Eq. 6 applied to a full weight row per flip)
// or the adjacency-based CSR engine (only the flipped bit's neighbours
// are touched).
type Rep int

const (
	// RepDense is the paper's kernel: O(n) per flip, n neighbours
	// evaluated (Eq. 5).
	RepDense Rep = iota
	// RepSparse is the CSR engine: O(deg) per flip, 1+deg neighbours
	// evaluated.
	RepSparse
)

func (r Rep) String() string {
	switch r {
	case RepDense:
		return "dense"
	case RepSparse:
		return "sparse"
	default:
		return "Rep(?)"
	}
}

// DefaultSparseDensityThreshold is the off-diagonal density below which
// ChooseRep selects the sparse engine. Chosen from measurement
// (BenchmarkFlipCrossover): on this package's engines the sparse flip
// beats the dense row scan up to ≈50 % density at n ∈ {1k, 4k}, but the
// win shrinks toward the crossover while CSR storage for mid-density
// instances approaches twice the dense matrix; 0.30 keeps only the
// ≥1.5× regime and leaves margin for the kernel simulator's per-flip
// reduction overhead. See DESIGN.md §9.
const DefaultSparseDensityThreshold = 0.30

// ChooseRep maps an off-diagonal non-zero density to the representation
// that flips faster at that density.
func ChooseRep(density float64) Rep {
	if density < DefaultSparseDensityThreshold {
		return RepSparse
	}
	return RepDense
}

// AutoRep returns the representation ChooseRep selects for p. The
// density scan is O(n²) once per instance — amortized to nothing
// against any real search, and identical to what Sparsify would walk
// anyway.
func AutoRep(p *Problem) Rep { return ChooseRep(p.Density()) }

// NewAutoZeroState returns a zero-positioned Engine in the
// representation AutoRep selects for p: the paper's dense State above
// the threshold, the CSR SparseState below it. Callers that construct
// many engines for one instance should instead Sparsify once and share
// the immutable *Sparse across units (see core.NewEngine).
func NewAutoZeroState(p *Problem) Engine {
	if AutoRep(p) == RepSparse {
		return NewSparseZeroState(Sparsify(p))
	}
	return NewZeroState(p)
}

// NewAutoState is NewAutoZeroState positioned at x.
func NewAutoState(p *Problem, x *bitvec.Vector) Engine {
	if AutoRep(p) == RepSparse {
		return NewSparseState(Sparsify(p), x)
	}
	return NewState(p, x)
}
