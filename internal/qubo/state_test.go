package qubo

import (
	"math"
	"testing"
	"testing/quick"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

func TestNewZeroState(t *testing.T) {
	p := randomProblem(30, 1)
	s := NewZeroState(p)
	if s.Energy() != 0 {
		t.Errorf("E(0) = %d, want 0", s.Energy())
	}
	for k := 0; k < p.N(); k++ {
		if s.Delta(k) != int64(p.Weight(k, k)) {
			t.Errorf("Δ_%d(0) = %d, want W_kk = %d", k, s.Delta(k), p.Weight(k, k))
		}
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestNewStateMatchesDirect(t *testing.T) {
	p := randomProblem(25, 2)
	x := bitvec.Random(p.N(), rng.New(3))
	s := NewState(p, x)
	if s.Energy() != p.Energy(x) {
		t.Errorf("state energy %d != direct %d", s.Energy(), p.Energy(x))
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
	// NewState must copy its input.
	x.Flip(0)
	if err := s.CheckConsistency(); err != nil {
		t.Errorf("state shares caller's vector: %v", err)
	}
}

func TestFlipMaintainsInvariants(t *testing.T) {
	p := randomProblem(40, 4)
	s := NewZeroState(p)
	r := rng.New(5)
	for step := 0; step < 300; step++ {
		s.Flip(r.Intn(p.N()))
		if step%50 == 0 {
			if err := s.CheckConsistency(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if s.Flips() != 300 {
		t.Errorf("Flips = %d, want 300", s.Flips())
	}
}

func TestFlipEnergyAgainstDirect(t *testing.T) {
	p := randomProblem(20, 6)
	s := NewZeroState(p)
	r := rng.New(7)
	for step := 0; step < 100; step++ {
		k := r.Intn(p.N())
		predicted := s.Energy() + s.Delta(k) // Eq. (5)
		s.Flip(k)
		if s.Energy() != predicted {
			t.Fatalf("step %d: E after flip %d, predicted %d", step, s.Energy(), predicted)
		}
		if direct := p.Energy(s.X()); direct != s.Energy() {
			t.Fatalf("step %d: incremental %d, direct %d", step, s.Energy(), direct)
		}
	}
}

func TestBestTracking(t *testing.T) {
	p := randomProblem(16, 8)
	s := NewZeroState(p)
	if _, _, ok := s.Best(); ok {
		t.Error("fresh zero state already has a best (should need a flip or NoteCurrentAsBest)")
	}
	r := rng.New(9)
	minSeen := int64(math.MaxInt64)
	for step := 0; step < 200; step++ {
		s.Flip(r.Intn(p.N()))
		if s.Energy() < minSeen {
			minSeen = s.Energy()
		}
	}
	bx, be, ok := s.Best()
	if !ok {
		t.Fatal("no best recorded after 200 flips")
	}
	// The tracked best can only be at least as good as the best visited
	// solution, because Algorithm 4 also evaluates all n neighbours of
	// every visited solution.
	if be > minSeen {
		t.Errorf("best %d worse than best visited %d", be, minSeen)
	}
	if got := p.Energy(bx); got != be {
		t.Errorf("best vector energy %d != recorded %d", got, be)
	}
}

func TestBestNeighbourIsEvaluated(t *testing.T) {
	// Construct an instance where the optimum is one flip away from a
	// visited solution but strictly below it, to prove neighbour
	// evaluation (Eq. 5 applied to all n neighbours) feeds best-tracking.
	p := New(3)
	p.SetWeight(0, 0, 5)
	p.SetWeight(1, 1, 4)
	p.SetWeight(2, 2, -9) // optimum: only bit 2 set, E = -9
	s := NewZeroState(p)
	s.Flip(0) // move somewhere worse; neighbours of 100 include 101 (E=-4)
	_, be, ok := s.Best()
	if !ok {
		t.Fatal("no best after flip")
	}
	// Neighbours of X=100 are 000 (0), 110 (9), 101 (-4); X itself 5.
	if be != -4 {
		t.Errorf("best = %d, want -4 (the best neighbour)", be)
	}
}

func TestResetBest(t *testing.T) {
	p := randomProblem(12, 10)
	s := NewZeroState(p)
	s.Flip(3)
	if _, _, ok := s.Best(); !ok {
		t.Fatal("no best after a flip")
	}
	s.ResetBest()
	if _, _, ok := s.Best(); ok {
		t.Error("best survived ResetBest")
	}
	if s.BestEnergy() != math.MaxInt64 {
		t.Error("BestEnergy not sentinel after reset")
	}
	s.Flip(4)
	if _, _, ok := s.Best(); !ok {
		t.Error("best not re-established after reset + flip")
	}
}

func TestNoteCurrentAsBest(t *testing.T) {
	p := randomProblem(10, 11)
	x := bitvec.Random(p.N(), rng.New(12))
	s := NewState(p, x)
	s.NoteCurrentAsBest()
	bx, be, ok := s.Best()
	if !ok || be != s.Energy() || !bx.Equal(s.X()) {
		t.Error("NoteCurrentAsBest did not record current solution")
	}
}

func TestSnapshotIndependent(t *testing.T) {
	p := randomProblem(10, 13)
	s := NewZeroState(p)
	snap := s.Snapshot()
	s.Flip(1)
	if snap.Bit(1) != 0 {
		t.Error("snapshot mutated by Flip")
	}
}

func TestQuickStateConsistencyUnderRandomWalks(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%30)
		p := randomProblem(n, seed)
		s := NewZeroState(p)
		r := rng.New(seed ^ 0xabcdef)
		for i := 0; i < 64; i++ {
			s.Flip(r.Intn(n))
		}
		return s.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickDoubleFlipRestoresDeltas(t *testing.T) {
	// Δ_i(flip_k(flip_k(X))) == Δ_i(X): Eq. (6) applied twice with the
	// same k must cancel exactly.
	f := func(seed uint64, kRaw uint8) bool {
		n := 2 + int(seed%20)
		p := randomProblem(n, seed)
		x := bitvec.Random(n, rng.New(seed+1))
		s := NewState(p, x)
		before := append([]int64(nil), s.Deltas()...)
		e := s.Energy()
		k := int(kRaw) % n
		s.Flip(k)
		s.Flip(k)
		if s.Energy() != e {
			return false
		}
		for i, d := range s.Deltas() {
			if d != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestExactSolveTinyKnown(t *testing.T) {
	// n=2: E = w00·x0 + w11·x1 + 2·w01·x0·x1.
	p := New(2)
	p.SetWeight(0, 0, -1)
	p.SetWeight(1, 1, -1)
	p.SetWeight(0, 1, 5)
	// Candidates: 00→0, 10→-1, 01→-1, 11→-1-1+10=8. Optimum -1.
	_, e, err := ExactSolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if e != -1 {
		t.Errorf("exact optimum %d, want -1", e)
	}
	optE, count, err := ExactEnergyHistogram(p)
	if err != nil {
		t.Fatal(err)
	}
	if optE != -1 || count != 2 {
		t.Errorf("histogram = (%d, %d), want (-1, 2)", optE, count)
	}
}

func TestExactSolveAgainstEnumeration(t *testing.T) {
	p := randomProblem(12, 14)
	bx, be, err := ExactSolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Energy(bx); got != be {
		t.Fatalf("exact vector energy %d != reported %d", got, be)
	}
	// Independent enumeration without Gray codes.
	min := int64(math.MaxInt64)
	for v := 0; v < 1<<12; v++ {
		x := bitvec.New(12)
		for k := 0; k < 12; k++ {
			x.Set(k, (v>>k)&1)
		}
		if e := p.Energy(x); e < min {
			min = e
		}
	}
	if be != min {
		t.Errorf("ExactSolve = %d, enumeration = %d", be, min)
	}
}

func TestExactSolveRefusesLarge(t *testing.T) {
	p := New(ExactMaxBits + 1)
	if _, _, err := ExactSolve(p); err == nil {
		t.Error("oversized exact solve accepted")
	}
	if _, _, err := ExactEnergyHistogram(p); err == nil {
		t.Error("oversized histogram accepted")
	}
}

func BenchmarkFlip1k(b *testing.B) {
	p := randomProblem(1024, 1)
	s := NewZeroState(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Flip(i & 1023)
	}
}

func BenchmarkFlip4k(b *testing.B) {
	p := randomProblem(4096, 1)
	s := NewZeroState(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Flip(i & 4095)
	}
}
