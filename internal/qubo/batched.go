package qubo

import (
	"math"
	"sync/atomic"

	"abs/internal/bitvec"
	"abs/internal/dkernel"
)

// The dense engine runs one of two flip implementations that are
// bit-for-bit equivalent on every observable (energy, deltas, flips,
// best-solution sequence):
//
//   - scalar: the original per-bit loop of Eq. (6) with an interleaved
//     running argmin — the paper's kernel transcribed literally;
//   - batched: the dkernel tile kernel — pre-scaled sign factors, the
//     row walked in cache-blocked 64-element tiles, per-tile minimum
//     values only, and the argmin's index (the tie-break) resolved
//     lazily on the single winning tile, and only on the rare flips
//     that actually improve the best-known neighbour.
//
// The batched path is the default; the scalar path remains both as the
// reference for the equivalence tests/fuzzers and as the measured
// baseline of `abs-bench -dense-report`. See DESIGN.md §14 for the
// equivalence argument.
var denseKernelScalar atomic.Bool

// SetDenseKernelScalar forces (or releases) the scalar reference flip
// path for subsequently constructed dense states. It exists for the
// dense kernel benchmark report and for tests; production callers
// never need it. Existing states keep the path they were built with.
func SetDenseKernelScalar(force bool) { denseKernelScalar.Store(force) }

// DenseKernelName reports the flip implementation newly constructed
// dense states will use: "scalar" when forced, otherwise the active
// dkernel implementation ("avx2", "generic", ...).
func DenseKernelName() string {
	if denseKernelScalar.Load() {
		return "scalar"
	}
	return dkernel.Name()
}

// initBatched equips a state positioned at its current x with the
// batched-kernel side structures: the pre-scaled sign register file
// sgnc[i] = 2·(1−2x_i) and the per-tile minima scratch buffer.
func (s *State) initBatched() {
	n := s.p.n
	s.batched = true
	s.sgnc = make([]int16, n)
	for i := 0; i < n; i++ {
		s.sgnc[i] = int16(2 - 4*s.x.Bit(i))
	}
	s.tmins = make([]int64, n/dkernel.TileWidth)
}

// flipBatched is Flip via the batched delta-evaluation kernel.
func (s *State) flipBatched(k int) {
	n := s.p.n
	row := s.p.w[k*n : (k+1)*n]
	d := s.delta

	oldDk := d[k]
	oldSgn := s.sgnc[k]
	neg := oldSgn < 0 // sk = 1−2x_k < 0 iff x_k = 1

	// Exclude bit k from both the update and the minimum by sentinel:
	// a zero sign entry keeps d[k] untouched at MaxInt64, which cannot
	// win a tile minimum (|Δ| ≤ 2·n·2¹⁵ ≪ MaxInt64).
	d[k] = math.MaxInt64
	s.sgnc[k] = 0

	tailMin := dkernel.FlipTiles(d, row, s.sgnc, s.tmins, neg)

	// Fold tile minima in ascending order with a strictly-smaller
	// comparison: the winning tile is the first tile containing the
	// global minimum, so first-occurrence tie-break order survives the
	// two-level reduction.
	minD := int64(math.MaxInt64)
	minTile := -1
	for t, m := range s.tmins {
		if m < minD {
			minD, minTile = m, t
		}
	}
	inTail := false
	if tailMin < minD {
		minD, inTail = tailMin, true
	}

	d[k] = -oldDk
	s.sgnc[k] = -oldSgn
	s.energy += oldDk
	s.x.Flip(k)
	s.flips++

	if s.energy < s.bestE {
		s.recordBest(s.x, s.energy)
	}
	if minD != math.MaxInt64 && s.energy+minD < s.bestE {
		s.recordBestNeighbour(s.locateMin(k, minD, minTile, inTail), s.energy+minD)
	}
}

// locateMin resolves the argmin index after the fact: scan only the
// winning tile (or the ragged tail) for the first occurrence of the
// minimum value, skipping bit k, whose slot now holds −oldΔk and may
// collide with the minimum by value.
func (s *State) locateMin(k int, minD int64, minTile int, inTail bool) int {
	var lo, hi int
	if inTail {
		lo, hi = len(s.tmins)*dkernel.TileWidth, s.p.n
	} else {
		lo, hi = minTile*dkernel.TileWidth, (minTile+1)*dkernel.TileWidth
	}
	i := lo + dkernel.FirstEq(s.delta[lo:hi], minD)
	if i == k {
		i = k + 1 + dkernel.FirstEq(s.delta[k+1:hi], minD)
	}
	return i
}

// newZeroStateMode is NewZeroState with the flip path pinned — the
// hook the equivalence tests and fuzzers use to run both kernels side
// by side regardless of the process-wide setting.
func newZeroStateMode(p *Problem, batched bool) *State {
	s := &State{
		p:     p,
		x:     bitvec.New(p.n),
		delta: make([]int64, p.n),
		bestE: math.MaxInt64,
	}
	for i := 0; i < p.n; i++ {
		s.delta[i] = int64(p.w[i*p.n+i])
	}
	if batched {
		s.initBatched()
	}
	return s
}

// newStateMode is NewState with the flip path pinned.
func newStateMode(p *Problem, x *bitvec.Vector, batched bool) *State {
	p.checkLen(x)
	s := &State{
		p:      p,
		x:      x.Clone(),
		delta:  p.DeltaAll(x, nil),
		energy: p.Energy(x),
		bestE:  math.MaxInt64,
	}
	if batched {
		s.initBatched()
	}
	return s
}
