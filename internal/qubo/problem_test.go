package qubo

import (
	"strings"
	"testing"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

// paperExample builds the n=4 instance of Figure 1's style: a small
// hand-checkable matrix.
func paperExample() *Problem {
	p := New(4)
	p.SetWeight(0, 0, -5)
	p.SetWeight(0, 1, 2)
	p.SetWeight(0, 2, 4)
	p.SetWeight(1, 1, -3)
	p.SetWeight(1, 3, 1)
	p.SetWeight(2, 2, -4)
	p.SetWeight(2, 3, 3)
	p.SetWeight(3, 3, -2)
	return p
}

// randomProblem builds a dense random instance for property tests.
func randomProblem(n int, seed uint64) *Problem {
	p := New(n)
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			p.SetWeight(i, j, int16(r.Intn(201)-100))
		}
	}
	return p
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, -3, MaxBits + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestSetWeightSymmetric(t *testing.T) {
	p := New(5)
	p.SetWeight(1, 3, 42)
	if p.Weight(1, 3) != 42 || p.Weight(3, 1) != 42 {
		t.Errorf("SetWeight not symmetric: %d / %d", p.Weight(1, 3), p.Weight(3, 1))
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddWeightAccumulatesAndOverflows(t *testing.T) {
	p := New(3)
	if err := p.AddWeight(0, 1, 1000); err != nil {
		t.Fatal(err)
	}
	if err := p.AddWeight(0, 1, 24); err != nil {
		t.Fatal(err)
	}
	if p.Weight(0, 1) != 1024 || p.Weight(1, 0) != 1024 {
		t.Errorf("AddWeight sum wrong: %d", p.Weight(0, 1))
	}
	if err := p.AddWeight(0, 1, 32000); err == nil {
		t.Error("overflowing AddWeight did not error")
	}
	// Diagonal accumulates once.
	if err := p.AddWeight(2, 2, 7); err != nil {
		t.Fatal(err)
	}
	if p.Weight(2, 2) != 7 {
		t.Errorf("diagonal AddWeight = %d, want 7", p.Weight(2, 2))
	}
}

func TestFromDenseValidation(t *testing.T) {
	if _, err := FromDense(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := FromDense([][]int32{{0, 1}, {2}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := FromDense([][]int32{{0, 1}, {2, 0}}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := FromDense([][]int32{{0, 40000}, {40000, 0}}); err == nil {
		t.Error("out-of-range weight accepted")
	}
	p, err := FromDense([][]int32{{-1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Weight(0, 0) != -1 || p.Weight(0, 1) != 2 || p.Weight(1, 1) != 3 {
		t.Error("FromDense stored wrong weights")
	}
}

func TestEnergyBySummation(t *testing.T) {
	p := paperExample()
	// Brute-force reference implementation: literal Eq. (1).
	ref := func(x *bitvec.Vector) int64 {
		var e int64
		for i := 0; i < p.N(); i++ {
			for j := 0; j < p.N(); j++ {
				e += int64(p.Weight(i, j)) * int64(x.Bit(i)) * int64(x.Bit(j))
			}
		}
		return e
	}
	for bitsVal := 0; bitsVal < 16; bitsVal++ {
		x := New4BitVector(bitsVal)
		if got, want := p.Energy(x), ref(x); got != want {
			t.Errorf("Energy(%s) = %d, want %d", x, got, want)
		}
	}
}

// New4BitVector builds a 4-bit vector from the low bits of v (bit 0 =
// least significant).
func New4BitVector(v int) *bitvec.Vector {
	x := bitvec.New(4)
	for k := 0; k < 4; k++ {
		x.Set(k, (v>>k)&1)
	}
	return x
}

func TestDeltaMatchesEnergyDifference(t *testing.T) {
	p := randomProblem(24, 7)
	r := rng.New(8)
	for trial := 0; trial < 50; trial++ {
		x := bitvec.Random(p.N(), r)
		e := p.Energy(x)
		for k := 0; k < p.N(); k++ {
			y := x.Clone()
			y.Flip(k)
			want := p.Energy(y) - e
			if got := p.Delta(x, k); got != want {
				t.Fatalf("Delta(x,%d) = %d, want %d", k, got, want)
			}
		}
	}
}

func TestDeltaAll(t *testing.T) {
	p := randomProblem(17, 9)
	x := bitvec.Random(p.N(), rng.New(10))
	ds := p.DeltaAll(x, nil)
	if len(ds) != p.N() {
		t.Fatalf("DeltaAll length %d", len(ds))
	}
	for k, d := range ds {
		if want := p.Delta(x, k); d != want {
			t.Errorf("DeltaAll[%d] = %d, want %d", k, d, want)
		}
	}
	// Reuse of a correctly sized destination must not allocate a new one.
	ds2 := p.DeltaAll(x, ds)
	if &ds2[0] != &ds[0] {
		t.Error("DeltaAll reallocated despite correct size")
	}
}

func TestEnergyBound(t *testing.T) {
	p := paperExample()
	lo, hi := p.EnergyBound()
	for v := 0; v < 16; v++ {
		e := p.Energy(New4BitVector(v))
		if e < lo || e > hi {
			t.Errorf("energy %d outside bound [%d, %d]", e, lo, hi)
		}
	}
}

func TestDensity(t *testing.T) {
	p := New(4)
	if p.Density() != 0 {
		t.Errorf("empty density = %v", p.Density())
	}
	p.SetWeight(0, 1, 1)
	// Upper triangle incl. diagonal has 10 slots; one non-zero.
	if got := p.Density(); got != 0.1 {
		t.Errorf("density = %v, want 0.1", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := paperExample()
	q := p.Clone()
	q.SetWeight(0, 0, 99)
	if p.Weight(0, 0) == 99 {
		t.Error("clone shares storage")
	}
	if q.Name() != p.Name() {
		t.Error("clone lost name")
	}
}

func TestPhi(t *testing.T) {
	if Phi(0) != 1 || Phi(1) != -1 {
		t.Errorf("Phi(0)=%d Phi(1)=%d", Phi(0), Phi(1))
	}
}

func TestTextRoundTrip(t *testing.T) {
	p := randomProblem(13, 3)
	p.SetName("unit-13")
	var sb strings.Builder
	if err := WriteText(&sb, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != p.N() || q.Name() != "unit-13" {
		t.Fatalf("round trip header: n=%d name=%q", q.N(), q.Name())
	}
	for i := 0; i < p.N(); i++ {
		for j := 0; j < p.N(); j++ {
			if p.Weight(i, j) != q.Weight(i, j) {
				t.Fatalf("weight (%d,%d) = %d, want %d", i, j, q.Weight(i, j), p.Weight(i, j))
			}
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"entry first":       "0 1 5\np qubo 3 1\n",
		"bad header":        "p foo 3 1\n",
		"bad size":          "p qubo 0 0\n",
		"short entry":       "p qubo 3 1\n0 1\n",
		"out of range":      "p qubo 3 1\n0 5 1\n",
		"non-numeric":       "p qubo 3 1\na b c\n",
		"weight too large":  "p qubo 3 1\n0 1 40000\n",
		"duplicate problem": "p qubo 3 0\np qubo 3 0\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadText accepted %q", name, in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	p := randomProblem(29, 4)
	p.SetName("bin-29")
	var sb strings.Builder
	if err := WriteBinary(&sb, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadBinary(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != p.N() || q.Name() != p.Name() {
		t.Fatalf("round trip header: n=%d name=%q", q.N(), q.Name())
	}
	for i := 0; i < p.N(); i++ {
		for j := 0; j < p.N(); j++ {
			if p.Weight(i, j) != q.Weight(i, j) {
				t.Fatalf("weight (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("nope")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("QBW1\x00\x00")); err == nil {
		t.Error("truncated header accepted")
	}
}

func BenchmarkEnergy1k(b *testing.B) {
	p := randomProblem(1024, 1)
	x := bitvec.Random(1024, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Energy(x)
	}
}

func BenchmarkDeltaAll1k(b *testing.B) {
	p := randomProblem(1024, 1)
	x := bitvec.Random(1024, rng.New(2))
	dst := make([]int64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DeltaAll(x, dst)
	}
}

func TestReadTextQbsolvHeader(t *testing.T) {
	// qbsolv dialect: "p qubo <topology> <maxNodes> <nNodes> <nCouplers>";
	// entries are "i i w" diagonals and "i j w" couplers.
	in := `c a qbsolv-style file
p qubo 0 8 3 2
0 0 -3
3 3 -5
7 7 2
0 3 4
3 7 -1
`
	p, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 8 {
		t.Fatalf("n = %d, want maxNodes 8", p.N())
	}
	if p.Weight(0, 0) != -3 || p.Weight(3, 3) != -5 || p.Weight(7, 7) != 2 {
		t.Error("diagonals wrong")
	}
	if p.Weight(0, 3) != 4 || p.Weight(3, 0) != 4 || p.Weight(3, 7) != -1 {
		t.Error("couplers wrong")
	}
}
