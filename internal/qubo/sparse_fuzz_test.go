package qubo

import (
	"testing"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

// FuzzSparsifyRoundTrip is the CSR round-trip oracle: whatever weight
// matrix the fuzzer assembles, the adjacency view must agree with the
// dense one — structurally (every non-zero recovered, nothing
// invented) and energetically (E(x) and every Δ_k(x) identical on
// arbitrary vectors).
func FuzzSparsifyRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte{0x01, 0xff, 0x7f}, []byte{0xaa})
	f.Add(uint64(42), []byte{}, []byte{})
	f.Add(uint64(7), []byte{0x00, 0x00, 0x80, 0x01}, []byte{0xff, 0x0f})
	f.Fuzz(func(t *testing.T, seed uint64, weights, vec []byte) {
		n := 2 + int(seed%30)
		p := New(n)
		// Deterministic fill from the fuzz payload: each byte seeds one
		// upper-triangle weight (zero bytes leave holes, so density
		// varies from empty to full across inputs).
		r := rng.New(seed)
		for b, w := range weights {
			i, j := r.Intn(n), r.Intn(n)
			p.SetWeight(i, j, int16(w)-128+int16(b%3))
		}

		sp := Sparsify(p)

		// Structural round-trip: CSR → dense must reproduce the matrix.
		for i := 0; i < n; i++ {
			if sp.Diag(i) != p.Weight(i, i) {
				t.Fatalf("diag[%d] = %d, want %d", i, sp.Diag(i), p.Weight(i, i))
			}
			row := make([]int16, n)
			idx, w := sp.Neighbours(i)
			for pos, j := range idx {
				if int(j) == i {
					t.Fatalf("diagonal %d leaked into neighbour list", i)
				}
				if w[pos] == 0 {
					t.Fatalf("explicit zero stored for (%d,%d)", i, j)
				}
				row[j] = w[pos]
			}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if row[j] != p.Weight(i, j) {
					t.Fatalf("reconstructed W[%d][%d] = %d, want %d", i, j, row[j], p.Weight(i, j))
				}
			}
		}

		// Energetic round-trip on vectors derived from the fuzz payload
		// plus the all-ones and all-zero corners.
		vectors := []*bitvec.Vector{bitvec.New(n), bitvec.Random(n, rng.New(seed^0xbeef))}
		x := bitvec.New(n)
		for i := 0; i < n; i++ {
			if i < len(vec)*8 && vec[i/8]&(1<<(i%8)) != 0 {
				x.Flip(i)
			}
		}
		ones := bitvec.New(n)
		for i := 0; i < n; i++ {
			ones.Flip(i)
		}
		vectors = append(vectors, x, ones)
		for _, v := range vectors {
			if got, want := sp.Energy(v), p.Energy(v); got != want {
				t.Fatalf("sparse E = %d, dense E = %d (x=%s)", got, want, v)
			}
			for k := 0; k < n; k++ {
				if got, want := sp.DeltaDirect(v, k), p.Delta(v, k); got != want {
					t.Fatalf("sparse Δ_%d = %d, dense Δ_%d = %d", k, got, k, want)
				}
			}
		}

		// The incremental engines must agree with the direct formulas
		// after walking to x.
		ds, ss := NewState(p, x), NewSparseState(sp, x)
		if ds.Energy() != ss.Energy() {
			t.Fatalf("engine energies diverged: dense %d, sparse %d", ds.Energy(), ss.Energy())
		}
		if err := ss.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	})
}
