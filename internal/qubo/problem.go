// Package qubo defines quadratic unconstrained binary optimization
// problem instances and the energy machinery of the ABS paper.
//
// An instance is an n×n symmetric matrix W of 16-bit weights (§1). The
// objective is an n-bit vector X minimizing the energy
//
//	E(X) = Xᵀ W X = Σ_{0≤i,j<n} W_ij x_i x_j          (Eq. 1)
//
// where the sum runs over all ordered pairs, so each off-diagonal
// weight contributes twice (W_ij + W_ji = 2·W_ij) and diagonal weights
// once. The package provides
//
//   - Problem: the weight matrix with symmetric accessors,
//   - Energy / DeltaAll: direct O(n²) and O(n) evaluation (Eqs. 1, 4),
//   - State: the incremental engine that maintains E(X) and all Δ_k(X)
//     across single-bit flips in O(n) per flip — the mechanism behind the
//     paper's O(1) search efficiency (Eqs. 5–6),
//   - text and binary serialization,
//   - an exact exhaustive solver for small instances (test oracle).
package qubo

import (
	"fmt"
	"math"
)

// MaxBits is the largest supported instance size, matching the paper's
// 32 k-variable limit (§1). The dense weight matrix for a MaxBits
// instance occupies 2 GiB; practical CPU experiments use far fewer bits.
const MaxBits = 32768

// Problem is a QUBO instance: a dense, symmetric n×n matrix of int16
// weights stored row-major. Symmetry (W_ij == W_ji) is an invariant
// maintained by SetWeight/AddWeight and checked by Validate for
// matrices built through FromDense.
type Problem struct {
	n int
	w []int16 // row-major, length n*n
	// name is an optional human-readable instance label ("G22",
	// "berlin52", "rand-4096", ...) carried through I/O and reports.
	name string
}

// New returns an all-zero n-variable problem.
// It panics if n is out of (0, MaxBits].
func New(n int) *Problem {
	if n <= 0 || n > MaxBits {
		panic(fmt.Sprintf("qubo: instance size %d out of range (0, %d]", n, MaxBits))
	}
	return &Problem{n: n, w: make([]int16, n*n)}
}

// FromDense builds a problem from a full matrix. The matrix must be
// square, symmetric, and have entries within int16 range.
func FromDense(m [][]int32) (*Problem, error) {
	n := len(m)
	if n == 0 {
		return nil, fmt.Errorf("qubo: empty matrix")
	}
	if n > MaxBits {
		return nil, fmt.Errorf("qubo: %d variables exceeds limit %d", n, MaxBits)
	}
	p := New(n)
	for i, row := range m {
		if len(row) != n {
			return nil, fmt.Errorf("qubo: row %d has length %d, want %d", i, len(row), n)
		}
		for j, v := range row {
			if v < math.MinInt16 || v > math.MaxInt16 {
				return nil, fmt.Errorf("qubo: weight W[%d][%d]=%d outside 16-bit range", i, j, v)
			}
			if m[j][i] != v {
				return nil, fmt.Errorf("qubo: matrix not symmetric at (%d,%d): %d != %d", i, j, v, m[j][i])
			}
			p.w[i*n+j] = int16(v)
		}
	}
	return p, nil
}

// N returns the number of variables (bits).
func (p *Problem) N() int { return p.n }

// Name returns the instance label, possibly empty.
func (p *Problem) Name() string { return p.name }

// SetName attaches a human-readable label to the instance.
func (p *Problem) SetName(name string) { p.name = name }

// Weight returns W_ij.
func (p *Problem) Weight(i, j int) int16 { return p.w[i*p.n+j] }

// Row returns row k of the weight matrix as a shared slice. Callers must
// not modify it; it exists for the O(n) flip-update hot loop, which
// walks one full row per flip (Eq. 6).
func (p *Problem) Row(k int) []int16 { return p.w[k*p.n : (k+1)*p.n] }

// SetWeight assigns W_ij = W_ji = w, keeping the matrix symmetric.
func (p *Problem) SetWeight(i, j int, w int16) {
	p.w[i*p.n+j] = w
	p.w[j*p.n+i] = w
}

// AddWeight adds w to both W_ij and W_ji (or once to the diagonal when
// i == j). It reports an error on int16 overflow so instance builders
// (e.g. the TSP encoder, which accumulates penalties) can detect that a
// formulation does not fit the 16-bit weight domain.
func (p *Problem) AddWeight(i, j int, w int16) error {
	sum := int32(p.w[i*p.n+j]) + int32(w)
	if sum < math.MinInt16 || sum > math.MaxInt16 {
		return fmt.Errorf("qubo: weight overflow at (%d,%d): %d", i, j, sum)
	}
	p.w[i*p.n+j] = int16(sum)
	if i != j {
		p.w[j*p.n+i] = int16(sum)
	}
	return nil
}

// Validate checks structural invariants (symmetry). Problems mutated
// only through SetWeight/AddWeight always pass.
func (p *Problem) Validate() error {
	for i := 0; i < p.n; i++ {
		for j := i + 1; j < p.n; j++ {
			if p.w[i*p.n+j] != p.w[j*p.n+i] {
				return fmt.Errorf("qubo: asymmetry at (%d,%d): %d != %d",
					i, j, p.w[i*p.n+j], p.w[j*p.n+i])
			}
		}
	}
	return nil
}

// Density returns the fraction of non-zero entries in the upper triangle
// including the diagonal. Synthetic random instances are ~1.0; Max-Cut
// instances from sparse graphs are near the graph density.
func (p *Problem) Density() float64 {
	nz, total := 0, 0
	for i := 0; i < p.n; i++ {
		for j := i; j < p.n; j++ {
			total++
			if p.w[i*p.n+j] != 0 {
				nz++
			}
		}
	}
	return float64(nz) / float64(total)
}

// Clone returns an independent deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{n: p.n, w: make([]int16, len(p.w)), name: p.name}
	copy(q.w, p.w)
	return q
}

// EnergyBound returns a lower bound L and upper bound U such that every
// solution energy lies in [L, U]. The bounds are the sums of negative
// (resp. positive) contributions of every matrix entry and are used to
// size accumulators and sanity-check targets.
func (p *Problem) EnergyBound() (lo, hi int64) {
	for i := 0; i < p.n; i++ {
		for j := i; j < p.n; j++ {
			c := int64(p.w[i*p.n+j])
			if i != j {
				c *= 2
			}
			if c < 0 {
				lo += c
			} else {
				hi += c
			}
		}
	}
	return lo, hi
}
