package qubo

import "abs/internal/bitvec"

// Engine is the contract between a search unit's incremental state and
// the search algorithms: the Δ register file, the energy, flips, and
// best-solution tracking of Algorithm 4. Two implementations exist:
//
//   - *State — dense: every flip updates all n deltas in O(n), exactly
//     the paper's GPU kernel.
//   - *SparseState — adjacency-based: a flip of bit k touches only the
//     deltas of k's neighbours in the weight graph, O(deg(k)). On
//     sparse instances (G-set graphs have average degree ≈ 5–50 at
//     densities of 0.1–2 %) this multiplies the flip rate by n/deg.
//     The paper's fully-connected kernel cannot exploit this; it is
//     the kind of application-tailored algorithm the paper's "future
//     work" section calls for.
//
// Engines are not safe for concurrent use; each search unit owns one.
type Engine interface {
	// N returns the number of variables.
	N() int
	// Energy returns E(X) of the current solution.
	Energy() int64
	// Delta returns Δ_k(X); Deltas returns the full vector as a shared
	// read-only slice.
	Delta(k int) int64
	Deltas() []int64
	// Flip flips bit k, maintaining energy, deltas and the best-found
	// solution.
	Flip(k int)
	// Flips returns the number of flips applied.
	Flips() uint64
	// EvaluatedPerFlip returns how many candidate solutions one flip
	// evaluates on average — n for the dense engine (Eq. 5 applied to
	// every neighbour), 1+avg-degree for the sparse engine. Search-rate
	// accounting multiplies flips by this.
	EvaluatedPerFlip() float64
	// X returns the current solution (shared, read-only); Snapshot an
	// owned copy.
	X() *bitvec.Vector
	Snapshot() *bitvec.Vector
	// Best returns the best solution since the last reset.
	Best() (x *bitvec.Vector, e int64, ok bool)
	BestEnergy() int64
	ResetBest()
	NoteCurrentAsBest()
}

// Compile-time checks.
var (
	_ Engine = (*State)(nil)
	_ Engine = (*SparseState)(nil)
)

// N implements Engine for the dense state.
func (s *State) N() int { return s.p.n }

// EvaluatedPerFlip implements Engine: the dense kernel evaluates all n
// neighbours per flip (Theorem 1).
func (s *State) EvaluatedPerFlip() float64 { return float64(s.p.n) }
