package qubo

import (
	"testing"
	"testing/quick"

	"abs/internal/rng"
)

func TestBranchAndBoundMatchesGrayCode(t *testing.T) {
	for _, n := range []int{2, 5, 10, 16, 18} {
		p := randomProblem(n, uint64(n)*31)
		_, want, err := ExactSolve(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BranchAndBound(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Energy != want {
			t.Errorf("n=%d: B&B %d, Gray-code %d", n, res.Energy, want)
		}
		if got := p.Energy(res.X); got != res.Energy {
			t.Errorf("n=%d: B&B vector energy %d != reported %d", n, got, res.Energy)
		}
	}
}

func TestBranchAndBoundPrunes(t *testing.T) {
	// On an 18-bit instance the pruned tree must be far smaller than
	// the 2¹⁹−1 nodes of full enumeration.
	p := randomProblem(18, 7)
	res, err := BranchAndBound(p)
	if err != nil {
		t.Fatal(err)
	}
	full := uint64(1)<<19 - 1
	if res.Nodes >= full/2 {
		t.Errorf("B&B expanded %d nodes of %d — bound not pruning", res.Nodes, full)
	}
}

func TestBranchAndBoundBeyondGrayCodeRange(t *testing.T) {
	if testing.Short() {
		t.Skip("B&B at 34 bits is slow in -short mode")
	}
	// A sparse 34-bit instance: out of ExactSolve's reach, fine for B&B.
	p := New(34)
	r := rng.New(9)
	for i := 0; i < 34; i++ {
		p.SetWeight(i, i, int16(r.Intn(41)-20))
	}
	for e := 0; e < 50; e++ {
		i, j := r.Intn(34), r.Intn(34)
		if i != j {
			p.SetWeight(i, j, int16(r.Intn(41)-20))
		}
	}
	res, err := BranchAndBound(p)
	if err != nil {
		t.Fatal(err)
	}
	// The exact optimum must be at least as good as a long heuristic run.
	s := NewZeroState(p)
	rr := rng.New(10)
	for i := 0; i < 20000; i++ {
		k := rr.Intn(34)
		if s.Delta(k) < 0 || rr.Intn(8) == 0 {
			s.Flip(k)
		}
	}
	if res.Energy > s.BestEnergy() {
		t.Errorf("B&B optimum %d worse than heuristic %d", res.Energy, s.BestEnergy())
	}
}

func TestBranchAndBoundRefusesHuge(t *testing.T) {
	if _, err := BranchAndBound(New(BnBMaxBits + 1)); err == nil {
		t.Error("oversized B&B accepted")
	}
}

func TestQuickBranchAndBoundEqualsEnumeration(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%12)
		p := randomProblem(n, seed)
		_, want, err := ExactSolve(p)
		if err != nil {
			return false
		}
		res, err := BranchAndBound(p)
		return err == nil && res.Energy == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
