package qubo

import (
	"strings"
	"testing"

	"abs/internal/rng"
)

// TestReadersNeverPanicOnGarbage feeds random byte soup and truncated
// valid prefixes to both parsers; they must return errors (or succeed),
// never panic. This is the cheap stand-in for a fuzz corpus.
func TestReadersNeverPanicOnGarbage(t *testing.T) {
	r := rng.New(0xdead)
	var valid strings.Builder
	p := randomProblem(12, 1)
	if err := WriteText(&valid, p); err != nil {
		t.Fatal(err)
	}
	validText := valid.String()
	var validBinB strings.Builder
	if err := WriteBinary(&validBinB, p); err != nil {
		t.Fatal(err)
	}
	validBin := validBinB.String()

	inputs := []string{"", "p", "p qubo", "p qubo -1 0", "\x00\x01\x02", "QBW1", "QBW1\xff\xff\xff\xff"}
	// Random soup.
	for i := 0; i < 200; i++ {
		n := r.Intn(64)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(r.Uint64())
		}
		inputs = append(inputs, string(b))
	}
	// Truncations of valid payloads.
	for cut := 0; cut < len(validText); cut += 7 {
		inputs = append(inputs, validText[:cut])
	}
	for cut := 0; cut < len(validBin); cut += 3 {
		inputs = append(inputs, validBin[:cut])
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ReadText panicked on %q: %v", in, rec)
				}
			}()
			_, _ = ReadText(strings.NewReader(in))
		}()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ReadBinary panicked on %q: %v", in, rec)
				}
			}()
			_, _ = ReadBinary(strings.NewReader(in))
		}()
	}
}
