package qubo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format
//
// The package reads and writes a simple line-oriented instance format,
// compatible in spirit with the sparse formats used by qbsolv and the
// G-set files:
//
//	c free-form comment
//	p qubo <n> <nonzero-entries>
//	<i> <j> <w>
//
// Entries are 0-based, each (i, j) with i <= j appears at most once, and
// w is the symmetric weight W_ij = W_ji (the diagonal when i == j).
// Lines starting with 'c' or '#' are comments.

// WriteText serializes p in the text format, emitting only the non-zero
// upper triangle.
func WriteText(w io.Writer, p *Problem) error {
	bw := bufio.NewWriter(w)
	if p.name != "" {
		fmt.Fprintf(bw, "c %s\n", p.name)
	}
	nz := 0
	for i := 0; i < p.n; i++ {
		for j := i; j < p.n; j++ {
			if p.w[i*p.n+j] != 0 {
				nz++
			}
		}
	}
	fmt.Fprintf(bw, "p qubo %d %d\n", p.n, nz)
	for i := 0; i < p.n; i++ {
		for j := i; j < p.n; j++ {
			if v := p.w[i*p.n+j]; v != 0 {
				fmt.Fprintf(bw, "%d %d %d\n", i, j, v)
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var (
		p       *Problem
		name    string
		entries int
		line    int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c', '#':
			if name == "" {
				name = strings.TrimSpace(text[1:])
			}
			continue
		case 'p':
			if p != nil {
				return nil, fmt.Errorf("qubo: line %d: duplicate problem line", line)
			}
			f := strings.Fields(text)
			if len(f) < 3 || f[1] != "qubo" {
				return nil, fmt.Errorf("qubo: line %d: malformed problem line %q", line, text)
			}
			// Two header dialects are accepted:
			//   p qubo <n> <nonzeros>                      (this module)
			//   p qubo <topology> <maxNodes> <nNodes> <nCouplers>
			//                                              (qbsolv files)
			sizeField := f[2]
			if len(f) == 6 {
				sizeField = f[3]
			}
			n, err := strconv.Atoi(sizeField)
			if err != nil || n <= 0 || n > MaxBits {
				return nil, fmt.Errorf("qubo: line %d: bad size %q", line, sizeField)
			}
			p = New(n)
			p.name = name
			continue
		}
		if p == nil {
			return nil, fmt.Errorf("qubo: line %d: entry before problem line", line)
		}
		f := strings.Fields(text)
		if len(f) != 3 {
			return nil, fmt.Errorf("qubo: line %d: want 'i j w', got %q", line, text)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		w, err3 := strconv.ParseInt(f[2], 10, 16)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("qubo: line %d: malformed entry %q", line, text)
		}
		if i < 0 || i >= p.n || j < 0 || j >= p.n {
			return nil, fmt.Errorf("qubo: line %d: index out of range in %q", line, text)
		}
		p.SetWeight(i, j, int16(w))
		entries++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("qubo: read: %w", err)
	}
	if p == nil {
		return nil, fmt.Errorf("qubo: no problem line found")
	}
	_ = entries // informational only; the header count is advisory
	return p, nil
}

// Binary format
//
// magic "QBW1", uint32 n, uint32 name length, name bytes, then the
// n(n+1)/2 upper-triangle weights as little-endian int16, row by row.
// The binary form exists because a 32 k-bit dense instance is ~1 GiB of
// triangle data and text parsing at that size is impractical.

var binMagic = [4]byte{'Q', 'B', 'W', '1'}

// WriteBinary serializes p in the binary format.
func WriteBinary(w io.Writer, p *Problem) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(p.n))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(p.name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(p.name); err != nil {
		return err
	}
	var buf [2]byte
	for i := 0; i < p.n; i++ {
		for j := i; j < p.n; j++ {
			binary.LittleEndian.PutUint16(buf[:], uint16(p.w[i*p.n+j]))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (*Problem, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("qubo: binary header: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("qubo: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("qubo: binary header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	nameLen := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if n <= 0 || n > MaxBits {
		return nil, fmt.Errorf("qubo: binary size %d out of range", n)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("qubo: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("qubo: binary name: %w", err)
	}
	p := New(n)
	p.name = string(nameBuf)
	tri := n * (n + 1) / 2
	data := make([]byte, 2*tri)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, fmt.Errorf("qubo: binary weights: %w", err)
	}
	idx := 0
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := int16(binary.LittleEndian.Uint16(data[2*idx:]))
			p.w[i*n+j] = v
			p.w[j*n+i] = v
			idx++
		}
	}
	return p, nil
}
