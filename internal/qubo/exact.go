package qubo

import (
	"fmt"
	"math/bits"

	"abs/internal/bitvec"
)

// ExactMaxBits bounds the exhaustive solver. 2³⁰ states at O(n) per
// Gray-code step is already minutes of work; the exact solver exists as
// a ground-truth oracle for tests and tiny instances, not as a
// competitor (exact QUBO methods top out around 200 bits, §1).
const ExactMaxBits = 30

// ExactSolve enumerates all 2ⁿ solutions in Gray-code order, flipping a
// single bit per step and updating the energy incrementally, and returns
// a minimum-energy vector and its energy. It returns an error when the
// instance exceeds ExactMaxBits.
func ExactSolve(p *Problem) (*bitvec.Vector, int64, error) {
	n := p.N()
	if n > ExactMaxBits {
		return nil, 0, fmt.Errorf("qubo: exact solve limited to %d bits, got %d", ExactMaxBits, n)
	}
	s := NewZeroState(p)
	best := s.Snapshot()
	bestE := s.Energy() // E(0) = 0
	total := uint64(1) << uint(n)
	for t := uint64(1); t < total; t++ {
		// The bit that changes between Gray codes of t-1 and t is the
		// number of trailing zeros of t.
		k := bits.TrailingZeros64(t)
		s.Flip(k)
		if s.Energy() < bestE {
			bestE = s.Energy()
			best.CopyFrom(s.X())
		}
	}
	return best, bestE, nil
}

// ExactEnergyHistogram enumerates all 2ⁿ energies and returns the number
// of optimal solutions together with the optimal energy. It is used by
// tests that need to know whether an instance has a unique ground state.
func ExactEnergyHistogram(p *Problem) (optE int64, count int, err error) {
	n := p.N()
	if n > ExactMaxBits {
		return 0, 0, fmt.Errorf("qubo: exact solve limited to %d bits, got %d", ExactMaxBits, n)
	}
	s := NewZeroState(p)
	optE, count = s.Energy(), 1
	total := uint64(1) << uint(n)
	for t := uint64(1); t < total; t++ {
		s.Flip(bits.TrailingZeros64(t))
		switch e := s.Energy(); {
		case e < optE:
			optE, count = e, 1
		case e == optE:
			count++
		}
	}
	return optE, count, nil
}
