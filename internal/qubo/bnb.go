package qubo

import (
	"fmt"

	"abs/internal/bitvec"
)

// BnBMaxBits bounds the branch-and-bound exact solver. Unlike the
// Gray-code enumerator (ExactMaxBits = 30, always 2ⁿ work), B&B prunes,
// so instances in the 30–48 bit range are often tractable — the regime
// the paper's §1 attributes to exact methods ("up to 200 bits" for the
// state of the art; this is a textbook bound, not that).
const BnBMaxBits = 48

// BnBResult reports an exact branch-and-bound solve.
type BnBResult struct {
	X      *bitvec.Vector
	Energy int64
	// Nodes is the number of search-tree nodes expanded; compare with
	// 2ⁿ to see the pruning factor.
	Nodes uint64
}

// BranchAndBound solves the instance exactly by depth-first search over
// variable assignments with a term-wise lower bound:
//
//	E(X) = Σ_i c_ii x_i + Σ_{i<j} c_ij x_i x_j,  c_ii = W_ii, c_ij = 2·W_ij.
//
// At a node with variables [0, k) fixed, the bound is the fixed-fixed
// contribution, plus for every unfixed j the best case of its linear
// part (diagonal + couplings to fixed ones), plus the sum of all
// negative unfixed-unfixed couplings — each term independently at its
// minimum, hence a valid lower bound. The incumbent starts from a
// greedy descent so pruning bites immediately.
func BranchAndBound(p *Problem) (BnBResult, error) {
	n := p.N()
	if n > BnBMaxBits {
		return BnBResult{}, fmt.Errorf("qubo: branch and bound limited to %d bits, got %d", BnBMaxBits, n)
	}

	// c coefficients: diag once, off-diag doubled (Eq. 1 counts pairs
	// twice).
	c := func(i, j int) int64 {
		if i == j {
			return int64(p.Weight(i, i))
		}
		return 2 * int64(p.Weight(i, j))
	}

	// pairNeg[k] = Σ_{k ≤ i < j < n} min(0, c_ij): the unfixed-unfixed
	// bound for a node at depth k.
	pairNeg := make([]int64, n+1)
	for k := n - 1; k >= 0; k-- {
		s := pairNeg[k+1]
		for j := k + 1; j < n; j++ {
			if v := c(k, j); v < 0 {
				s += v
			}
		}
		pairNeg[k] = s
	}

	// Incumbent: greedy descent from zero (cheap, often strong).
	inc := NewZeroState(p)
	for {
		best, bestD := -1, int64(0)
		for i, d := range inc.Deltas() {
			if d < bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			break
		}
		inc.Flip(best)
	}
	bestX := inc.Snapshot()
	bestE := inc.Energy()

	// DFS state.
	x := bitvec.New(n)
	// linAdj[j] = Σ_{fixed i with x_i = 1} c_ij for unfixed j.
	linAdj := make([]int64, n)
	var nodes uint64

	var dfs func(k int, curE int64)
	dfs = func(k int, curE int64) {
		nodes++
		if k == n {
			if curE < bestE {
				bestE = curE
				bestX.CopyFrom(x)
			}
			return
		}
		// Lower bound for the subtree.
		bound := curE + pairNeg[k]
		for j := k; j < n; j++ {
			if lin := c(j, j) + linAdj[j]; lin < 0 {
				bound += lin
			}
		}
		if bound >= bestE {
			return
		}
		// Branch x_k = 1 first when its linear part is negative — the
		// more promising side, tightening the incumbent early.
		lin := c(k, k) + linAdj[k]
		tryOne := func() {
			x.Set(k, 1)
			for j := k + 1; j < n; j++ {
				linAdj[j] += c(k, j)
			}
			dfs(k+1, curE+lin)
			for j := k + 1; j < n; j++ {
				linAdj[j] -= c(k, j)
			}
			x.Set(k, 0)
		}
		tryZero := func() { dfs(k+1, curE) }
		if lin < 0 {
			tryOne()
			tryZero()
		} else {
			tryZero()
			tryOne()
		}
	}
	dfs(0, 0)
	return BnBResult{X: bestX, Energy: bestE, Nodes: nodes}, nil
}
