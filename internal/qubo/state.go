package qubo

import (
	"fmt"
	"math"

	"abs/internal/bitvec"
)

// State is the incremental search state of one logical search unit (one
// "CUDA block" in the paper's implementation, §3.2). It owns
//
//   - the current solution X,
//   - its energy E(X),
//   - the full difference vector d where d[k] = Δ_k(X) (Eq. 4), the
//     paper's per-thread register file,
//   - the best solution B found since the last reset and its energy.
//
// Flip applies one bit flip and updates all of the above in O(n) word
// operations using Eq. (6); since each flip evaluates the energy of all
// n neighbours (Eq. 5), the amortized cost per evaluated solution is
// O(1) — Theorem 1.
//
// A State is not safe for concurrent use; each search unit owns one.
type State struct {
	p     *Problem
	x     *bitvec.Vector
	delta []int64
	// energy is E(x). With |W| < 2¹⁵ and n ≤ 2¹⁵ the extreme energy
	// magnitude is ~2·n²·2¹⁵ ≈ 2⁴⁶, well inside int64.
	energy int64

	bestVec *bitvec.Vector
	bestE   int64

	flips uint64 // total accepted flips since construction

	// Batched-kernel state (nil/false on the scalar path): sgnc is the
	// pre-scaled sign register file sgnc[i] = 2·(1−2x_i) that replaces
	// per-flip bit extraction, tmins the per-tile minima scratch. See
	// batched.go and DESIGN.md §14.
	batched bool
	sgnc    []int16
	tmins   []int64
}

// NewZeroState returns a State at the all-zero vector, for which
// E(0) = 0 and Δ_i(0) = W_ii (§2.1), initialized in O(n). Starting
// every search unit at 0 and walking to its first target with a straight
// search is what lets the paper claim O(1) search efficiency from the
// very first evaluated solution.
func NewZeroState(p *Problem) *State {
	return newZeroStateMode(p, !denseKernelScalar.Load())
}

// NewState returns a State positioned at x, computing the energy and
// the full Δ vector directly in O(n²). It is used by tests, by the
// baseline solvers, and wherever a search must begin at an arbitrary
// vector without a straight-search walk.
func NewState(p *Problem, x *bitvec.Vector) *State {
	return newStateMode(p, x, !denseKernelScalar.Load())
}

// Problem returns the instance this state searches.
func (s *State) Problem() *Problem { return s.p }

// Energy returns E(X) for the current solution.
func (s *State) Energy() int64 { return s.energy }

// Delta returns Δ_k(X), the energy change if bit k were flipped.
func (s *State) Delta(k int) int64 { return s.delta[k] }

// Deltas returns the full Δ vector as a shared read-only slice; callers
// (selection policies) must not modify it.
func (s *State) Deltas() []int64 { return s.delta }

// X returns the current solution as a shared read-only vector; callers
// must not mutate it. Use Snapshot for an owned copy.
func (s *State) X() *bitvec.Vector { return s.x }

// Snapshot returns an independent copy of the current solution.
func (s *State) Snapshot() *bitvec.Vector { return s.x.Clone() }

// Flips returns the number of accepted flips applied so far. Each flip
// evaluates the energies of all n neighbours, so the number of evaluated
// solutions — the numerator of the paper's search rate — is Flips() · n.
func (s *State) Flips() uint64 { return s.flips }

// Flip flips bit k, updating E(X) via Eq. (5), every Δ_i via Eq. (6),
// and the best-found solution as in Algorithm 4. O(n) either way: the
// batched path (default) runs the dkernel tile kernel, the scalar path
// the literal per-bit loop; both produce identical observable state.
func (s *State) Flip(k int) {
	if s.batched {
		s.flipBatched(k)
		return
	}
	s.flipScalar(k)
}

// flipScalar is the original per-bit implementation, kept verbatim as
// the bit-for-bit reference the batched kernel is tested against (and
// as the measured baseline of `abs-bench -dense-report`).
func (s *State) flipScalar(k int) {
	n := s.p.n
	row := s.p.w[k*n : (k+1)*n]
	d := s.delta
	words := s.x.Words()

	// φ(x_k) before the flip; Eq. (6) uses pre-flip bit values.
	sk := int64(1 - 2*s.x.Bit(k))
	oldDk := d[k]

	// Update all Δ_i and track the minimum over i ≠ k so the best
	// neighbour of the new solution can be recorded without a second
	// scan. The i == k slot receives a garbage update inside the loop
	// and is overwritten with −Δ_k afterwards (Case 1 of §2.1).
	minI, minD := -1, int64(math.MaxInt64)
	for i := 0; i < n; i++ {
		xi := int64(words[uint(i)>>6]>>(uint(i)&63)) & 1
		d[i] += 2 * sk * (1 - 2*xi) * int64(row[i])
		if d[i] < minD && i != k {
			minI, minD = i, d[i]
		}
	}
	d[k] = -oldDk
	s.energy += oldDk
	s.x.Flip(k)
	s.flips++

	// Best-solution tracking (Algorithm 4): the new solution itself,
	// then its best neighbour flip_i(X′) with energy E(X′)+Δ_i(X′).
	if s.energy < s.bestE {
		s.recordBest(s.x, s.energy)
	}
	if minI >= 0 && s.energy+minD < s.bestE {
		// Materialize the neighbour lazily; improvements are rare after
		// the initial descent, so the O(n/64) copy does not affect the
		// amortized O(1) efficiency.
		s.recordBestNeighbour(minI, s.energy+minD)
	}
}

func (s *State) recordBest(v *bitvec.Vector, e int64) {
	if s.bestVec == nil {
		s.bestVec = v.Clone()
	} else {
		s.bestVec.CopyFrom(v)
	}
	s.bestE = e
}

func (s *State) recordBestNeighbour(i int, e int64) {
	if s.bestVec == nil {
		s.bestVec = s.x.Clone()
	} else {
		s.bestVec.CopyFrom(s.x)
	}
	s.bestVec.Flip(i)
	s.bestE = e
}

// Best returns the best solution seen since the last reset and its
// energy. ok is false if no solution has been recorded yet. The caller
// receives a private copy.
func (s *State) Best() (x *bitvec.Vector, e int64, ok bool) {
	if s.bestVec == nil || s.bestE == math.MaxInt64 {
		return nil, 0, false
	}
	return s.bestVec.Clone(), s.bestE, true
}

// BestEnergy returns the best energy since the last reset, or
// math.MaxInt64 when none has been recorded.
func (s *State) BestEnergy() int64 { return s.bestE }

// ResetBest forgets the best-found solution (Step 3 of the device loop,
// §3.2), so that each bulk-search iteration publishes a fresh solution
// instead of repeating an old champion — the paper's premature-
// convergence guard.
func (s *State) ResetBest() {
	s.bestE = math.MaxInt64
}

// NoteCurrentAsBest seeds best-tracking with the current solution, used
// after a state is positioned at a meaningful start (e.g. the baseline
// SA solver, Algorithm 2 line 2).
func (s *State) NoteCurrentAsBest() {
	s.recordBest(s.x, s.energy)
}

// CheckConsistency recomputes E(X) and every Δ_k from the weight matrix
// and compares them with the incrementally maintained values. It is the
// test oracle for Eqs. (5)–(6) and costs O(n²).
func (s *State) CheckConsistency() error {
	if e := s.p.Energy(s.x); e != s.energy {
		return fmt.Errorf("qubo: energy drift: incremental %d, direct %d", s.energy, e)
	}
	for k := 0; k < s.p.n; k++ {
		if d := s.p.Delta(s.x, k); d != s.delta[k] {
			return fmt.Errorf("qubo: delta drift at %d: incremental %d, direct %d",
				k, s.delta[k], d)
		}
	}
	if s.batched {
		for i := 0; i < s.p.n; i++ {
			if want := int16(2 - 4*s.x.Bit(i)); s.sgnc[i] != want {
				return fmt.Errorf("qubo: sign register drift at %d: %d, want %d",
					i, s.sgnc[i], want)
			}
		}
	}
	return nil
}
