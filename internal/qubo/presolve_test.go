package qubo

import (
	"testing"
	"testing/quick"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

func TestPersistenciesByHand(t *testing.T) {
	p := New(3)
	p.SetWeight(0, 0, 5)  // positive diagonal, no couplings: x0 = 0
	p.SetWeight(1, 1, -5) // negative diagonal, no couplings: x1 = 1
	p.SetWeight(2, 2, -1) // coupled both ways: free
	p.SetWeight(2, 0, 3)
	p.SetWeight(2, 1, -3)
	got := Persistencies(p)
	// Variable 0: lo = 5 + min couplings... c_02 = 6 > 0 so lo = 5 ≥ 0 → zero.
	if got[0] != FixedZero {
		t.Errorf("x0 verdict %v, want FixedZero", got[0])
	}
	// Variable 1: hi = −5 + max(0, −6) = −5 ≤ 0 → one.
	if got[1] != FixedOne {
		t.Errorf("x1 verdict %v, want FixedOne", got[1])
	}
	// Variable 2: lo = −1 − 6 = −7 < 0, hi = −1 + 6 = 5 > 0 → free.
	if got[2] != Free {
		t.Errorf("x2 verdict %v, want Free", got[2])
	}
}

// TestPersistencyIsOptimalSafe: on random small instances, fixing the
// persistent variables must not exclude every optimal solution.
func TestPersistencyIsOptimalSafe(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		p := randomProblem(12, seed)
		fixed := Persistencies(p)
		_, optE, err := ExactSolve(p)
		if err != nil {
			t.Fatal(err)
		}
		// Search exhaustively among assignments respecting the fixings.
		best := int64(1) << 62
		for v := 0; v < 1<<12; v++ {
			x := bitvec.New(12)
			ok := true
			for k := 0; k < 12; k++ {
				bit := (v >> k) & 1
				switch fixed[k] {
				case FixedZero:
					bit = 0
				case FixedOne:
					bit = 1
				}
				x.Set(k, bit)
				_ = ok
			}
			if e := p.Energy(x); e < best {
				best = e
			}
		}
		if best != optE {
			t.Errorf("seed %d: persistency-respecting optimum %d != global %d", seed, best, optE)
		}
	}
}

func TestPresolveFixpointAndExpand(t *testing.T) {
	// A chain designed to cascade: fixing x0 = 1 folds −6 into x1's
	// diagonal, which then fixes x1, and so on.
	p := New(4)
	p.SetWeight(0, 0, -10) // x0 = 1 immediately (hi = −10 + 2·2 ≤ 0? c_01 = −6 <0 → hi = −10 → one)
	p.SetWeight(0, 1, -3)
	p.SetWeight(1, 1, 4) // alone: lo = 4 − 6 = −2, hi = 4 → free; after x0=1 folds −6: diag −2, hi = −2 + 2·1... see below
	p.SetWeight(1, 2, -1)
	p.SetWeight(2, 2, 100) // x2 = 0 regardless
	p.SetWeight(3, 3, -1)  // x3 = 1 (no couplings)
	res, err := Presolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixed[0] != FixedOne {
		t.Errorf("x0 = %v, want one", res.Fixed[0])
	}
	if res.Fixed[2] != FixedZero {
		t.Errorf("x2 = %v, want zero", res.Fixed[2])
	}
	if res.Fixed[3] != FixedOne {
		t.Errorf("x3 = %v, want one", res.Fixed[3])
	}
	// Solve whatever remains exactly and expand; the result must match
	// the global optimum.
	_, optE, err := ExactSolve(p)
	if err != nil {
		t.Fatal(err)
	}
	var full *bitvec.Vector
	if res.Reduced != nil {
		rx, re, err := ExactSolve(res.Reduced)
		if err != nil {
			t.Fatal(err)
		}
		if re+res.Offset != optE {
			t.Errorf("reduced optimum %d + offset %d != global %d", re, res.Offset, optE)
		}
		full, err = res.Expand(rx)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		full, err = res.Expand(nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if e := p.Energy(full); e != optE {
		t.Errorf("expanded solution energy %d, want %d", e, optE)
	}
}

func TestPresolveNoFixingsOnDenseRandom(t *testing.T) {
	// Dense balanced random instances rarely admit first-order fixings;
	// the presolve must degrade gracefully to a same-size instance.
	p := randomProblem(30, 77)
	res, err := Presolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced == nil {
		t.Skip("unexpectedly fixed everything")
	}
	if res.Reduced.N()+countFixed(res.Fixed) != 30 {
		t.Error("free + fixed != n")
	}
}

func countFixed(f []FixedValue) int {
	c := 0
	for _, v := range f {
		if v != Free {
			c++
		}
	}
	return c
}

// TestQuickPresolvePreservesOptimum is the headline property: solving
// the reduced instance exactly and expanding always reproduces the
// global optimum energy.
func TestQuickPresolvePreservesOptimum(t *testing.T) {
	f := func(seed uint64) bool {
		n := 3 + int(seed%12)
		// Mix of sparse structure and biased diagonals so fixings occur.
		p := New(n)
		r := rng.New(seed)
		for i := 0; i < n; i++ {
			p.SetWeight(i, i, int16(r.Intn(41)-25)) // biased negative
			if j := r.Intn(n); j != i {
				p.SetWeight(i, j, int16(r.Intn(21)-10))
			}
		}
		_, optE, err := ExactSolve(p)
		if err != nil {
			return false
		}
		res, err := Presolve(p)
		if err != nil {
			return false
		}
		if res.Reduced == nil {
			full, err := res.Expand(nil)
			return err == nil && p.Energy(full) == optE
		}
		rx, re, err := ExactSolve(res.Reduced)
		if err != nil {
			return false
		}
		full, err := res.Expand(rx)
		if err != nil {
			return false
		}
		return re+res.Offset == optE && p.Energy(full) == optE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestExpandValidation(t *testing.T) {
	p := randomProblem(10, 5)
	res, err := Presolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced != nil {
		if _, err := res.Expand(nil); err == nil {
			t.Error("nil reduced solution accepted")
		}
		if _, err := res.Expand(bitvec.New(res.Reduced.N() + 1)); err == nil {
			t.Error("wrong-size reduced solution accepted")
		}
	}
}
