package obsflags

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"abs/internal/telemetry"
)

func TestOffByDefault(t *testing.T) {
	var c Config
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	p, err := c.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Registry != nil || p.Tracer != nil || p.Addr() != "" {
		t.Errorf("plane should be inert with no flags: %+v", p)
	}
}

func TestOpenServesAndSinks(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.jsonl")
	var c Config
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{"-metrics-addr", "127.0.0.1:0", "-trace-out", out}); err != nil {
		t.Fatal(err)
	}
	p, err := c.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Registry == nil || p.Tracer == nil {
		t.Fatal("flags set but plane is inert")
	}

	p.Tracer.Emit(telemetry.Event{Kind: telemetry.EventSolutionPublish, Device: 0, Block: 0})

	resp, err := http.Get("http://" + p.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "abs_build_info") {
		t.Error("/metrics is missing abs_build_info")
	}
	if !strings.Contains(string(body), "abs_uptime_seconds") {
		t.Error("/metrics is missing abs_uptime_seconds")
	}

	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), string(telemetry.EventSolutionPublish)) {
		t.Errorf("trace-out sink is missing the emitted event: %q", data)
	}
}

func TestAlwaysOn(t *testing.T) {
	p, err := Config{AlwaysOn: true, Ring: 64}.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Registry == nil || p.Tracer == nil {
		t.Fatal("AlwaysOn plane is inert")
	}
	if p.Addr() != "" {
		t.Errorf("no metrics-addr was given, but endpoint at %q", p.Addr())
	}
}
