// Package obsflags is the shared observability flag surface of the abs
// commands. Every binary that exposes -metrics-addr and -trace-out
// registers them through one Config and opens one Plane from it, so the
// flags mean the same thing everywhere: -metrics-addr serves the live
// telemetry endpoint (Prometheus text at /metrics, a JSON snapshot at
// /metrics.json, the event ring at /trace, pprof under /debug/pprof/),
// and -trace-out streams every lifecycle event as one JSON object per
// line. Opening a plane also stamps build identity, so abs_build_info
// and abs_uptime_seconds appear on every binary's endpoint.
package obsflags

import (
	"flag"
	"fmt"
	"os"

	"abs/internal/telemetry"
)

// Config is the flag surface. Zero value: telemetry off unless AlwaysOn.
type Config struct {
	// MetricsAddr serves the live telemetry plane when non-empty.
	MetricsAddr string
	// TraceOut streams lifecycle events as JSONL to this file.
	TraceOut string

	// AlwaysOn builds the registry and tracer even when no flag asked
	// for a sink — for commands (abs-worker) whose own HTTP plane
	// re-exposes them. Not a flag.
	AlwaysOn bool
	// Ring overrides the tracer's ring capacity (default 1<<14).
	// Not a flag.
	Ring int
}

// Register installs the shared flags on fs (the standard library's
// flag.CommandLine in the common case).
func (c *Config) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "", "serve live telemetry on this address (e.g. :9090); empty disables")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write lifecycle events as JSONL to this file")
}

// Plane is one opened observability plane. Registry and Tracer are nil
// when the config asked for nothing — both are nil-safe throughout
// internal/telemetry, so callers thread them through unconditionally.
type Plane struct {
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer

	srv  *telemetry.Server
	sink *os.File
}

// Open builds the plane: registry + tracer (when any sink is requested
// or AlwaysOn), build-info stamp, the JSONL sink, and the live
// endpoint. Closing the plane flushes and stops all of it.
func (c Config) Open() (*Plane, error) {
	p := &Plane{}
	if !c.AlwaysOn && c.MetricsAddr == "" && c.TraceOut == "" {
		return p, nil
	}
	ring := c.Ring
	if ring <= 0 {
		ring = 1 << 14
	}
	p.Registry = telemetry.NewRegistry()
	p.Tracer = telemetry.NewTracer(ring)
	telemetry.StampBuildInfo(p.Registry)
	if c.TraceOut != "" {
		f, err := os.Create(c.TraceOut)
		if err != nil {
			return nil, err
		}
		p.sink = f
		p.Tracer.SetSink(f)
	}
	if c.MetricsAddr != "" {
		srv, err := telemetry.Serve(c.MetricsAddr, p.Registry, p.Tracer)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("metrics endpoint: %w", err)
		}
		p.srv = srv
	}
	return p, nil
}

// Addr is the live endpoint's bound address ("" when none is serving).
func (p *Plane) Addr() string {
	if p == nil || p.srv == nil {
		return ""
	}
	return p.srv.Addr()
}

// Close flushes the tracer, closes the JSONL sink and stops the live
// endpoint. Safe on a zero or half-open plane.
func (p *Plane) Close() error {
	if p == nil {
		return nil
	}
	var first error
	if p.srv != nil {
		first = p.srv.Close()
	}
	p.Tracer.Flush()
	if p.sink != nil {
		if err := p.sink.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
