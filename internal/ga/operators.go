package ga

import (
	"fmt"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

// Config tunes the genetic operators. The zero value is invalid; use
// DefaultConfig.
type Config struct {
	// PoolSize is the number of solutions the host retains (m of §3.1).
	PoolSize int
	// MutationBits is how many random bits a mutation flips.
	MutationBits int
	// CrossoverWeight, MutationWeight and CopyWeight set the relative
	// frequency of the three target-generation operators (§2.2.1 Step 3).
	CrossoverWeight, MutationWeight, CopyWeight int
	// Elitism biases parent selection toward the front of the sorted
	// pool: parents are drawn with index ⌊m·u^Elitism⌋ for uniform u, so
	// 1 is uniform and larger values favour low-energy entries.
	Elitism float64
	// AllowDuplicatePool disables the pool's distinctness guard. It
	// exists only for the ablation that measures how much the guard
	// contributes (§2.2.1); leave it false for real solving.
	AllowDuplicatePool bool
	// Policy, when non-nil, is installed on the pool before seeding so
	// every insertion — including the random seeds — passes through the
	// same admission rule (see Pool.SetPolicy). Nil keeps plain
	// elitist admission.
	Policy AdmissionPolicy
}

// DefaultConfig returns the operator mix used by the solver: mostly
// crossover with some mutation, mild elitism, pool of 64.
func DefaultConfig() Config {
	return Config{
		PoolSize:        64,
		MutationBits:    8,
		CrossoverWeight: 6,
		MutationWeight:  3,
		CopyWeight:      1,
		Elitism:         2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PoolSize <= 1 {
		return fmt.Errorf("ga: pool size %d too small", c.PoolSize)
	}
	if c.MutationBits < 1 {
		return fmt.Errorf("ga: mutation bits %d too small", c.MutationBits)
	}
	if c.CrossoverWeight < 0 || c.MutationWeight < 0 || c.CopyWeight < 0 {
		return fmt.Errorf("ga: negative operator weight")
	}
	if c.CrossoverWeight+c.MutationWeight+c.CopyWeight == 0 {
		return fmt.Errorf("ga: all operator weights zero")
	}
	if c.Elitism <= 0 {
		return fmt.Errorf("ga: elitism %v must be positive", c.Elitism)
	}
	return nil
}

// Host is the genetic-algorithm side of ABS: it owns the pool and
// generates target solutions. It is not safe for concurrent use; the
// single host loop owns it (device blocks talk to the host only through
// the gpusim buffers).
type Host struct {
	cfg  Config
	pool *Pool
	r    *rng.Rand

	generated uint64
	inserted  uint64
	rejected  uint64
}

// NewHost creates a host with a random-seeded pool of n-bit solutions.
func NewHost(n int, cfg Config, r *rng.Rand) (*Host, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Host{cfg: cfg, pool: NewPool(n, cfg.PoolSize), r: r}
	h.pool.SetAllowDuplicates(cfg.AllowDuplicatePool)
	h.pool.SetPolicy(cfg.Policy)
	h.pool.SeedRandom(r)
	return h, nil
}

// Pool exposes the pool for inspection (reports, tests).
func (h *Host) Pool() *Pool { return h.pool }

// Stats returns operator counters: targets generated, device solutions
// inserted, device solutions rejected as duplicates/too-bad.
func (h *Host) Stats() (generated, inserted, rejected uint64) {
	return h.generated, h.inserted, h.rejected
}

// Insert offers a device-found solution to the pool (§3.1 Step 3) and
// reports whether it was admitted.
func (h *Host) Insert(x *bitvec.Vector, e int64) bool {
	if h.pool.Insert(x, e) {
		h.inserted++
		return true
	}
	h.rejected++
	return false
}

// pickIndex draws a pool index with elitist bias.
func (h *Host) pickIndex() int {
	u := h.r.Float64()
	for i := 1.0; i < h.cfg.Elitism; i++ {
		u *= h.r.Float64()
	}
	i := int(u * float64(h.pool.Len()))
	if i >= h.pool.Len() {
		i = h.pool.Len() - 1
	}
	return i
}

// Mutate returns a copy of x with MutationBits distinct random bits
// flipped.
func (h *Host) Mutate(x *bitvec.Vector) *bitvec.Vector {
	y := x.Clone()
	k := h.cfg.MutationBits
	if k > y.Len() {
		k = y.Len()
	}
	// Draw k distinct positions by rejection; k ≪ n in practice.
	seen := make(map[int]struct{}, k)
	for len(seen) < k {
		i := h.r.Intn(y.Len())
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		y.Flip(i)
	}
	return y
}

// NewTarget generates one target solution for a device block using a
// weighted choice of crossover, mutation or copy over pool parents
// (§2.2.1). The returned vector is owned by the caller.
func (h *Host) NewTarget() *bitvec.Vector {
	h.generated++
	total := h.cfg.CrossoverWeight + h.cfg.MutationWeight + h.cfg.CopyWeight
	roll := h.r.Intn(total)
	a := h.pool.At(h.pickIndex())
	switch {
	case roll < h.cfg.CrossoverWeight:
		b := h.pool.At(h.pickIndex())
		return bitvec.CrossUniform(a.X, b.X, h.r)
	case roll < h.cfg.CrossoverWeight+h.cfg.MutationWeight:
		return h.Mutate(a.X)
	default:
		return a.X.Clone()
	}
}
