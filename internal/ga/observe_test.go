package ga

import (
	"testing"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

type poolRecorder struct {
	inserted []int64
	sizes    []int
	evicted  []int64
	rejected []int64
}

func (r *poolRecorder) PoolInserted(e int64, size int) {
	r.inserted = append(r.inserted, e)
	r.sizes = append(r.sizes, size)
}
func (r *poolRecorder) PoolEvicted(e int64)  { r.evicted = append(r.evicted, e) }
func (r *poolRecorder) PoolRejected(e int64) { r.rejected = append(r.rejected, e) }

func TestPoolObserver(t *testing.T) {
	rec := &poolRecorder{}
	p := NewPool(16, 2)
	p.SetObserver(rec)
	r := rng.New(7)

	a, b, c := bitvec.Random(16, r), bitvec.Random(16, r), bitvec.Random(16, r)
	p.Insert(a.Clone(), -10) // admitted, size 1
	p.Insert(b, -5)          // admitted, size 2 (full)
	p.Insert(a.Clone(), -10) // duplicate → rejected
	p.Insert(c, -20)         // admitted, evicts -5
	p.Insert(bitvec.Random(16, r), -1) // worse than worst → rejected

	if want := []int64{-10, -5, -20}; !equalInt64(rec.inserted, want) {
		t.Errorf("inserted = %v, want %v", rec.inserted, want)
	}
	if want := []int{1, 2, 2}; !equalInt(rec.sizes, want) {
		t.Errorf("sizes = %v, want %v", rec.sizes, want)
	}
	if want := []int64{-5}; !equalInt64(rec.evicted, want) {
		t.Errorf("evicted = %v, want %v", rec.evicted, want)
	}
	if want := []int64{-10, -1}; !equalInt64(rec.rejected, want) {
		t.Errorf("rejected = %v, want %v", rec.rejected, want)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
