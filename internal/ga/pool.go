// Package ga implements the host-side genetic algorithm of the ABS
// framework (§2.2.1, §3.1): a sorted, duplicate-free solution pool fed
// by the device blocks, and the mutation/crossover/copy operators that
// turn pool members into new target solutions for the blocks to search
// around.
//
// Two properties from the paper are load-bearing:
//
//   - the host never computes the energy function — pool entries start
//     with energy "+∞" (unevaluated random vectors) and only acquire
//     energies that devices report;
//   - the pool stays sorted and distinct, with binary-search insertion,
//     as the premature-convergence guard: a solution identical to an
//     existing entry is rejected instead of crowding the pool.
package ga

import (
	"fmt"
	"math"
	"sort"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

// UnknownEnergy is the sentinel for entries whose energy has not been
// computed by any device ("the energy values are +∞ in the sense that
// they are not computed", §3.1 Step 1).
const UnknownEnergy = int64(math.MaxInt64)

// Entry is one pool member.
type Entry struct {
	X *bitvec.Vector
	E int64
}

// Known reports whether the entry's energy has been evaluated.
func (e Entry) Known() bool { return e.E != UnknownEnergy }

// Pool is the host's solution pool: at most Cap entries, sorted by
// ascending energy (unknown-energy entries last, ordered among
// themselves by vector content), all vectors pairwise distinct.
// Pool is not safe for concurrent use; the host loop owns it.
type Pool struct {
	n       int
	cap     int
	entries []Entry
	// allowDuplicates disables the distinctness guard; it exists only
	// for the ablation study that quantifies the guard's value (§2.2.1
	// argues distinctness prevents premature convergence).
	allowDuplicates bool
	policy          AdmissionPolicy
	obs             PoolObserver
}

// Decision is an AdmissionPolicy's ruling on one candidate offered to
// the pool.
type Decision struct {
	// Admit reports whether the candidate may enter the pool.
	Admit bool
	// Evict lists the indices of resident entries to remove before the
	// candidate is inserted, in ascending order. A near-duplicate
	// replacement evicts the displaced neighbours; a diverse admission
	// into a full pool evicts exactly one victim. Empty means the pool
	// has room (or the candidate was rejected).
	Evict []int
}

// AdmissionPolicy extends the pool's admission rule beyond plain
// elitism. When installed, every Insert and WouldAdmit consults
// Decide with the same arguments — the one seam both share, so a
// prefilter verdict (the ingest gate's WouldAdmit) always agrees with
// the Insert that follows it. Decide must not mutate the pool; exact
// duplicates (same vector, same energy) are filtered by the pool
// itself before the policy is consulted, honouring the duplicate
// ablation toggle.
//
// internal/diversity implements the Hamming-distance policy of Diverse
// Adaptive Bulk Search (arXiv 2207.03069) against this interface.
type AdmissionPolicy interface {
	Decide(p *Pool, x *bitvec.Vector, e int64) Decision
}

// PolicyChecker is the optional invariant hook of an AdmissionPolicy:
// when the installed policy implements it, CheckInvariants includes
// the policy's own pool invariants (e.g. no near-duplicate pairs, the
// distance-bucket structure) in its verdict.
type PolicyChecker interface {
	CheckPool(p *Pool) error
}

// SetPolicy installs (or, with nil, removes) an admission policy. The
// pool is single-owner; installing a policy mid-run applies it to
// subsequent insertions only.
func (p *Pool) SetPolicy(pol AdmissionPolicy) { p.policy = pol }

// Policy returns the installed admission policy, nil when the pool is
// running plain elitism.
func (p *Pool) Policy() AdmissionPolicy { return p.policy }

// AllowsDuplicates reports whether the distinctness guard is disabled
// (the §2.2.1 ablation toggle); admission policies consult it so their
// near-duplicate handling agrees with the pool's own duplicate rule.
func (p *Pool) AllowsDuplicates() bool { return p.allowDuplicates }

// PoolObserver receives pool admission traffic: every Insert outcome
// and every eviction a full pool performs to make room. The core
// solver installs a telemetry adapter here; ga itself stays free of
// any metrics dependency. Callbacks run on the inserting goroutine
// (the host loop — the pool is single-owner by contract) and must be
// cheap.
type PoolObserver interface {
	// PoolInserted reports an admitted entry and the pool's new size.
	PoolInserted(e int64, size int)
	// PoolEvicted reports the worst entry displaced by an insertion
	// into a full pool.
	PoolEvicted(e int64)
	// PoolRejected reports an Insert turned away (duplicate, or no
	// better than a full pool's worst).
	PoolRejected(e int64)
}

// SetObserver installs obs (nil detaches). The pool is not safe for
// concurrent use, so there is no publication concern.
func (p *Pool) SetObserver(obs PoolObserver) { p.obs = obs }

// SetAllowDuplicates toggles the distinctness guard (ablation use only).
func (p *Pool) SetAllowDuplicates(v bool) { p.allowDuplicates = v }

// NewPool returns an empty pool for n-bit solutions holding at most
// capacity entries.
func NewPool(n, capacity int) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("ga: pool capacity %d must be positive", capacity))
	}
	if n <= 0 {
		panic(fmt.Sprintf("ga: solution size %d must be positive", n))
	}
	return &Pool{n: n, cap: capacity, entries: make([]Entry, 0, capacity)}
}

// SeedRandom fills the pool with distinct random vectors of unknown
// energy (§3.1 Step 1). When the solution space is smaller than the
// pool capacity (2ⁿ < cap, tiny instances), it stops at 2ⁿ distinct
// vectors instead of demanding the impossible.
func (p *Pool) SeedRandom(r *rng.Rand) {
	want := p.cap
	if p.n < 60 {
		if space := uint64(1) << uint(p.n); space < uint64(want) {
			want = int(space)
		}
	}
	// Bounded attempts: a diversity policy may reject random seeds that
	// land too close to residents, and on small instances the space may
	// simply not hold `want` mutually distant vectors. Starting with a
	// partially filled pool is fine — inserts refill it; an unbounded
	// loop would hang.
	for attempts := 0; len(p.entries) < want && attempts < 64*want; attempts++ {
		p.Insert(bitvec.Random(p.n, r), UnknownEnergy)
	}
}

// Len returns the current number of entries.
func (p *Pool) Len() int { return len(p.entries) }

// Cap returns the maximum number of entries.
func (p *Pool) Cap() int { return p.cap }

// At returns the i-th entry in energy order (0 is the best). The
// caller must treat the vector as read-only.
func (p *Pool) At(i int) Entry { return p.entries[i] }

// Best returns the best evaluated entry, if any.
func (p *Pool) Best() (Entry, bool) {
	if len(p.entries) == 0 || !p.entries[0].Known() {
		return Entry{}, false
	}
	return p.entries[0], true
}

// less orders entries by (energy, vector content) so that equal-energy
// duplicates land on the same position and binary search stays exact.
func less(aE int64, aX *bitvec.Vector, bE int64, bX *bitvec.Vector) bool {
	if aE != bE {
		return aE < bE
	}
	return aX.Compare(bX) < 0
}

// InsertPos returns the index Insert would place (x, e) at in the
// current energy order — the binary-search position over the
// (energy, vector) comparator. Admission policies use it to compare a
// candidate against only the residents it would outrank.
func (p *Pool) InsertPos(x *bitvec.Vector, e int64) int {
	return sort.Search(len(p.entries), func(i int) bool {
		return !less(p.entries[i].E, p.entries[i].X, e, x)
	})
}

// isDuplicate reports whether (x, e) is an exact resident duplicate at
// its insertion position, honouring the duplicate ablation toggle.
func (p *Pool) isDuplicate(pos int, x *bitvec.Vector, e int64) bool {
	return !p.allowDuplicates && pos < len(p.entries) &&
		p.entries[pos].E == e && p.entries[pos].X.Equal(x)
}

// Insert adds x with energy e. It returns false without modifying the
// pool when x is already present, or when admission fails: under plain
// elitism, a full pool rejects anything no better than its worst;
// under an installed AdmissionPolicy the policy decides, and may evict
// entries other than the worst (near-duplicate replacement, bucket-
// preserving eviction). Insert takes ownership of x.
//
// The position is found by binary search in O(log m) comparisons
// (§2.2.1/§3.1 Step 3).
func (p *Pool) Insert(x *bitvec.Vector, e int64) bool {
	if x.Len() != p.n {
		panic(fmt.Sprintf("ga: inserting %d-bit vector into %d-bit pool", x.Len(), p.n))
	}
	pos := p.InsertPos(x, e)
	if p.isDuplicate(pos, x, e) {
		if p.obs != nil {
			p.obs.PoolRejected(e)
		}
		return false // duplicate: keep the pool distinct
	}
	if p.policy != nil {
		return p.insertWithPolicy(x, e)
	}
	if len(p.entries) == p.cap {
		if pos == len(p.entries) {
			if p.obs != nil {
				p.obs.PoolRejected(e)
			}
			return false // worse than everything resident
		}
		// Shift the tail right by one, dropping the worst entry.
		evicted := p.entries[len(p.entries)-1].E
		copy(p.entries[pos+1:], p.entries[pos:len(p.entries)-1])
		p.entries[pos] = Entry{X: x, E: e}
		if p.obs != nil {
			p.obs.PoolEvicted(evicted)
			p.obs.PoolInserted(e, len(p.entries))
		}
		return true
	}
	p.entries = append(p.entries, Entry{})
	copy(p.entries[pos+1:], p.entries[pos:len(p.entries)-1])
	p.entries[pos] = Entry{X: x, E: e}
	if p.obs != nil {
		p.obs.PoolInserted(e, len(p.entries))
	}
	return true
}

// insertWithPolicy runs the policy path of Insert: ask the installed
// policy, apply its evictions (descending, so earlier indices stay
// valid), then place the candidate at its sorted position.
func (p *Pool) insertWithPolicy(x *bitvec.Vector, e int64) bool {
	d := p.policy.Decide(p, x, e)
	if !d.Admit {
		if p.obs != nil {
			p.obs.PoolRejected(e)
		}
		return false
	}
	for i := len(d.Evict) - 1; i >= 0; i-- {
		idx := d.Evict[i]
		if idx < 0 || idx >= len(p.entries) {
			continue // defensive: a policy bug must not corrupt the pool
		}
		evicted := p.entries[idx].E
		p.entries = append(p.entries[:idx], p.entries[idx+1:]...)
		if p.obs != nil {
			p.obs.PoolEvicted(evicted)
		}
	}
	if len(p.entries) == p.cap {
		// The policy admitted into a full pool without making room;
		// refuse rather than exceed capacity.
		if p.obs != nil {
			p.obs.PoolRejected(e)
		}
		return false
	}
	pos := p.InsertPos(x, e)
	p.entries = append(p.entries, Entry{})
	copy(p.entries[pos+1:], p.entries[pos:len(p.entries)-1])
	p.entries[pos] = Entry{X: x, E: e}
	if p.obs != nil {
		p.obs.PoolInserted(e, len(p.entries))
	}
	return true
}

// WouldAdmit reports whether Insert(x, e) would modify the pool,
// without modifying it: false for duplicates and for candidates the
// admission rule turns away (under plain elitism, entries no better
// than a full pool's worst; under an installed AdmissionPolicy,
// whatever the policy rejects — both paths consult the exact same
// Decide call Insert uses, so the prefilter and the insertion always
// agree). The host's ingest gate uses it to skip validating
// publications that would be rejected anyway.
func (p *Pool) WouldAdmit(x *bitvec.Vector, e int64) bool {
	if x.Len() != p.n {
		return false
	}
	pos := p.InsertPos(x, e)
	if p.isDuplicate(pos, x, e) {
		return false
	}
	if p.policy != nil {
		d := p.policy.Decide(p, x, e)
		// Mirror insertWithPolicy's capacity backstop: an admission
		// that would leave no room is a rejection there too.
		return d.Admit && (len(p.entries)-len(d.Evict) < p.cap)
	}
	return len(p.entries) < p.cap || pos < len(p.entries)
}

// Contains reports whether an identical vector with the same energy is
// resident; it exists for tests.
func (p *Pool) Contains(x *bitvec.Vector, e int64) bool {
	pos := sort.Search(len(p.entries), func(i int) bool {
		return !less(p.entries[i].E, p.entries[i].X, e, x)
	})
	return pos < len(p.entries) && p.entries[pos].E == e && p.entries[pos].X.Equal(x)
}

// CheckInvariants verifies sortedness and distinctness; tests and the
// property suite call it after mutation sequences.
func (p *Pool) CheckInvariants() error {
	for i := 1; i < len(p.entries); i++ {
		a, b := p.entries[i-1], p.entries[i]
		if less(b.E, b.X, a.E, a.X) {
			return fmt.Errorf("ga: pool out of order at %d", i)
		}
		if !p.allowDuplicates && a.E == b.E && a.X.Equal(b.X) {
			return fmt.Errorf("ga: duplicate pool entries at %d", i)
		}
	}
	if len(p.entries) > p.cap {
		return fmt.Errorf("ga: pool over capacity: %d > %d", len(p.entries), p.cap)
	}
	if pc, ok := p.policy.(PolicyChecker); ok {
		if err := pc.CheckPool(p); err != nil {
			return err
		}
	}
	return nil
}
