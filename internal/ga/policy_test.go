package ga

import (
	"errors"
	"testing"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

// recordingPolicy is a scriptable AdmissionPolicy for seam tests: it
// returns a fixed decision and counts Decide calls.
type recordingPolicy struct {
	decision Decision
	calls    int
}

func (rp *recordingPolicy) Decide(p *Pool, x *bitvec.Vector, e int64) Decision {
	rp.calls++
	return rp.decision
}

// worstEvictPolicy reimplements plain elitism through the policy seam,
// so churn tests exercise the policy path with realistic decisions.
type worstEvictPolicy struct{}

func (worstEvictPolicy) Decide(p *Pool, x *bitvec.Vector, e int64) Decision {
	if p.Len() < p.Cap() {
		return Decision{Admit: true}
	}
	if p.InsertPos(x, e) == p.Len() {
		return Decision{}
	}
	return Decision{Admit: true, Evict: []int{p.Len() - 1}}
}

// failingChecker always reports a violation, proving CheckInvariants
// consults an installed PolicyChecker.
type failingChecker struct{ recordingPolicy }

var errCheckerTripped = errors.New("checker tripped")

func (failingChecker) CheckPool(p *Pool) error { return errCheckerTripped }

func TestPoolDuplicatesFilteredBeforePolicy(t *testing.T) {
	p := NewPool(8, 4)
	rp := &recordingPolicy{decision: Decision{Admit: true}}
	p.SetPolicy(rp)
	x := bitvec.New(8)
	if !p.Insert(x.Clone(), 5) {
		t.Fatal("first insert rejected")
	}
	calls := rp.calls
	// An exact duplicate never reaches the policy: the pool's own
	// distinctness prefilter rejects it first, and WouldAdmit agrees.
	if p.WouldAdmit(x, 5) {
		t.Fatal("WouldAdmit accepted an exact duplicate")
	}
	if p.Insert(x.Clone(), 5) {
		t.Fatal("Insert admitted an exact duplicate")
	}
	if rp.calls != calls {
		t.Fatalf("policy consulted %d times for duplicates", rp.calls-calls)
	}

	// With the ablation toggle on, duplicates DO reach the policy, and
	// the policy's verdict is what both Insert and WouldAdmit report.
	p.SetAllowDuplicates(true)
	if !p.WouldAdmit(x, 5) {
		t.Fatal("allow-duplicates WouldAdmit disagreed with the admitting policy")
	}
	if !p.Insert(x.Clone(), 5) {
		t.Fatal("allow-duplicates Insert rejected what the policy admitted")
	}
	if rp.calls != calls+2 {
		t.Fatalf("policy consulted %d extra times, want 2", rp.calls-calls)
	}
}

func TestPoolPolicyCapacityBackstop(t *testing.T) {
	// A buggy policy that admits into a full pool without making room
	// must be refused by Insert — and WouldAdmit must predict that
	// refusal, not the policy's raw verdict.
	p := NewPool(8, 2)
	r := rng.New(1)
	p.Insert(bitvec.Random(8, r), 1)
	p.Insert(bitvec.Random(8, r), 2)
	rp := &recordingPolicy{decision: Decision{Admit: true}} // no evictions
	p.SetPolicy(rp)
	x := bitvec.Random(8, r)
	if p.WouldAdmit(x, 0) {
		t.Fatal("WouldAdmit ignored the capacity backstop")
	}
	if p.Insert(x, 0) {
		t.Fatal("Insert exceeded capacity on a roomless admission")
	}
	if p.Len() != 2 {
		t.Fatalf("pool len %d, want 2", p.Len())
	}
}

func TestPoolPolicyBoundsCheckedEvictions(t *testing.T) {
	// Out-of-range eviction indices from a buggy policy are skipped,
	// never corrupting the pool.
	p := NewPool(8, 4)
	r := rng.New(2)
	p.Insert(bitvec.Random(8, r), 1)
	p.SetPolicy(&recordingPolicy{decision: Decision{Admit: true, Evict: []int{-1, 99}}})
	if !p.Insert(bitvec.Random(8, r), 2) {
		t.Fatal("insert rejected")
	}
	if p.Len() != 2 {
		t.Fatalf("pool len %d, want 2 (bogus evictions skipped)", p.Len())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolWouldAdmitAgreesWithInsertUnderPolicy(t *testing.T) {
	// The satellite regression: Insert and WouldAdmit share one Decide
	// path, so they can never disagree — with or without the duplicate
	// ablation toggle.
	for _, allowDup := range []bool{false, true} {
		r := rng.New(7)
		p := NewPool(6, 5) // tiny space: plenty of duplicate collisions
		p.SetAllowDuplicates(allowDup)
		p.SetPolicy(worstEvictPolicy{})
		for i := 0; i < 400; i++ {
			x := bitvec.Random(6, r)
			e := int64(r.Intn(20) - 10)
			want := p.WouldAdmit(x, e)
			if got := p.Insert(x, e); got != want {
				t.Fatalf("allowDup=%v step %d: WouldAdmit=%v, Insert=%v", allowDup, i, want, got)
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("allowDup=%v step %d: %v", allowDup, i, err)
			}
		}
	}
}

func TestPoolCheckInvariantsConsultsPolicyChecker(t *testing.T) {
	p := NewPool(8, 4)
	p.Insert(bitvec.Random(8, rng.New(9)), 3)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("clean pool failed base invariants: %v", err)
	}
	p.SetPolicy(&failingChecker{recordingPolicy{decision: Decision{Admit: true}}})
	if err := p.CheckInvariants(); !errors.Is(err, errCheckerTripped) {
		t.Fatalf("CheckInvariants = %v, want the installed checker's error", err)
	}
}

func TestPoolPolicyAccessors(t *testing.T) {
	p := NewPool(8, 4)
	if p.Policy() != nil {
		t.Fatal("new pool has a policy installed")
	}
	rp := &recordingPolicy{}
	p.SetPolicy(rp)
	if p.Policy() != AdmissionPolicy(rp) {
		t.Fatal("Policy() did not return the installed policy")
	}
	if p.AllowsDuplicates() {
		t.Fatal("AllowsDuplicates true by default")
	}
	p.SetAllowDuplicates(true)
	if !p.AllowsDuplicates() {
		t.Fatal("SetAllowDuplicates(true) not reflected")
	}
}
