package ga

import (
	"testing"
	"testing/quick"
	"time"

	"abs/internal/bitvec"
	"abs/internal/rng"
)

func TestPoolInsertSortedDistinct(t *testing.T) {
	p := NewPool(8, 4)
	r := rng.New(1)
	v1 := bitvec.Random(8, r)
	if !p.Insert(v1, 10) {
		t.Fatal("insert into empty pool failed")
	}
	if p.Insert(v1.Clone(), 10) {
		t.Fatal("duplicate insert accepted")
	}
	v2 := bitvec.Random(8, r)
	v3 := bitvec.Random(8, r)
	p.Insert(v2, -5)
	p.Insert(v3, 3)
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.At(0).E != -5 || p.At(1).E != 3 || p.At(2).E != 10 {
		t.Errorf("pool not sorted: %d %d %d", p.At(0).E, p.At(1).E, p.At(2).E)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPoolEvictsWorstWhenFull(t *testing.T) {
	p := NewPool(8, 2)
	r := rng.New(2)
	a, b, c := bitvec.Random(8, r), bitvec.Random(8, r), bitvec.Random(8, r)
	p.Insert(a, 5)
	p.Insert(b, 7)
	// Worse than the worst: rejected.
	if p.Insert(c, 9) {
		t.Error("worse-than-worst insert accepted into full pool")
	}
	// Better: inserted, worst evicted.
	if !p.Insert(c.Clone(), 1) {
		t.Error("better insert rejected")
	}
	if p.Len() != 2 || p.At(0).E != 1 || p.At(1).E != 5 {
		t.Errorf("pool after eviction: %d entries, best %d", p.Len(), p.At(0).E)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPoolDistinctVectorsSameEnergy(t *testing.T) {
	// Two different vectors with the same energy must both be admitted
	// (distinctness is by vector, not energy).
	p := NewPool(8, 4)
	a, _ := bitvec.FromString("00000001")
	b, _ := bitvec.FromString("00000010")
	if !p.Insert(a, 5) || !p.Insert(b, 5) {
		t.Fatal("distinct same-energy vectors rejected")
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	// But exact duplicates of either are rejected.
	if p.Insert(a.Clone(), 5) {
		t.Error("duplicate accepted")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPoolUnknownEnergySortsLast(t *testing.T) {
	p := NewPool(8, 3)
	r := rng.New(3)
	p.Insert(bitvec.Random(8, r), UnknownEnergy)
	p.Insert(bitvec.Random(8, r), 100)
	if !p.At(0).Known() || p.At(1).Known() {
		t.Error("unknown-energy entry not sorted last")
	}
	if _, ok := p.Best(); !ok {
		t.Error("Best should report the evaluated entry")
	}
}

func TestPoolBestOnUnevaluated(t *testing.T) {
	p := NewPool(8, 2)
	if _, ok := p.Best(); ok {
		t.Error("empty pool reported a best")
	}
	p.Insert(bitvec.New(8), UnknownEnergy)
	if _, ok := p.Best(); ok {
		t.Error("unevaluated pool reported a best")
	}
}

func TestSeedRandomFillsToCapacity(t *testing.T) {
	p := NewPool(32, 10)
	p.SeedRandom(rng.New(4))
	if p.Len() != 10 {
		t.Fatalf("seeded len = %d", p.Len())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestQuickPoolInvariantsUnderChurn(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := NewPool(16, 8)
		for i := 0; i < 200; i++ {
			p.Insert(bitvec.Random(16, r), int64(r.Intn(40)-20))
		}
		return p.CheckInvariants() == nil && p.Len() <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{PoolSize: 1, MutationBits: 1, CrossoverWeight: 1, Elitism: 1},
		{PoolSize: 4, MutationBits: 0, CrossoverWeight: 1, Elitism: 1},
		{PoolSize: 4, MutationBits: 1, Elitism: 1}, // all weights zero
		{PoolSize: 4, MutationBits: 1, CrossoverWeight: -1, Elitism: 1},
		{PoolSize: 4, MutationBits: 1, CrossoverWeight: 1, Elitism: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMutateFlipsExactBits(t *testing.T) {
	h, err := NewHost(64, DefaultConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	x := bitvec.Random(64, rng.New(6))
	y := h.Mutate(x)
	if d := x.Hamming(y); d != DefaultConfig().MutationBits {
		t.Errorf("mutation distance %d, want %d", d, DefaultConfig().MutationBits)
	}
}

func TestMutateClampsToLength(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MutationBits = 100
	h, err := NewHost(8, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	x := bitvec.New(8)
	y := h.Mutate(x)
	if d := x.Hamming(y); d != 8 {
		t.Errorf("clamped mutation distance %d, want 8", d)
	}
}

func TestCrossUniformBitsFromParents(t *testing.T) {
	r := rng.New(8)
	a := bitvec.Random(256, r)
	b := bitvec.Random(256, r)
	c := bitvec.CrossUniform(a, b, r)
	for i := 0; i < 256; i++ {
		if c.Bit(i) != a.Bit(i) && c.Bit(i) != b.Bit(i) {
			t.Fatalf("child bit %d from neither parent", i)
		}
	}
}

func TestCrossUniformMixes(t *testing.T) {
	r := rng.New(9)
	a := bitvec.New(256) // all zeros
	b := bitvec.New(256)
	for i := 0; i < 256; i++ {
		b.Set(i, 1)
	}
	c := bitvec.CrossUniform(a, b, r)
	ones := c.OnesCount()
	if ones < 64 || ones > 192 {
		t.Errorf("crossover of 0s and 1s produced %d ones out of 256 (expected ~128)", ones)
	}
}

func TestNewTargetProducesValidVectors(t *testing.T) {
	h, err := NewHost(128, DefaultConfig(), rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		x := h.NewTarget()
		if x.Len() != 128 {
			t.Fatalf("target length %d", x.Len())
		}
	}
	gen, _, _ := h.Stats()
	if gen != 500 {
		t.Errorf("generated counter = %d", gen)
	}
}

func TestHostInsertCounters(t *testing.T) {
	h, err := NewHost(16, DefaultConfig(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	x := bitvec.Random(16, rng.New(12))
	h.Insert(x, -100)
	h.Insert(x.Clone(), -100) // duplicate
	_, ins, rej := h.Stats()
	if ins != 1 || rej != 1 {
		t.Errorf("counters: inserted=%d rejected=%d, want 1/1", ins, rej)
	}
}

func TestElitismBiasesSelection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolSize = 32
	cfg.Elitism = 3
	h, err := NewHost(16, cfg, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	front, back := 0, 0
	for i := 0; i < 10000; i++ {
		idx := h.pickIndex()
		if idx < 8 {
			front++
		}
		if idx >= 24 {
			back++
		}
	}
	if front <= back*2 {
		t.Errorf("elitism not biasing: front quartile %d, back quartile %d", front, back)
	}
}

func TestPoolPanicsOnMisuse(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-capacity pool accepted")
			}
		}()
		NewPool(8, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length-mismatched insert accepted")
			}
		}()
		NewPool(8, 2).Insert(bitvec.New(9), 0)
	}()
}

func BenchmarkPoolInsert(b *testing.B) {
	p := NewPool(1024, 64)
	r := rng.New(1)
	vecs := make([]*bitvec.Vector, 256)
	for i := range vecs {
		vecs[i] = bitvec.Random(1024, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Insert(vecs[i&255].Clone(), int64(r.Intn(1000)))
	}
}

func BenchmarkNewTarget1k(b *testing.B) {
	h, err := NewHost(1024, DefaultConfig(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.NewTarget()
	}
}

func TestSeedRandomTinySolutionSpace(t *testing.T) {
	// Regression: a 4-bit pool with capacity 64 can hold at most 16
	// distinct vectors; seeding must terminate at that point rather
	// than spin forever looking for a 17th.
	p := NewPool(4, 64)
	done := make(chan struct{})
	go func() {
		p.SeedRandom(rng.New(1))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SeedRandom did not terminate on a tiny solution space")
	}
	if p.Len() != 16 {
		t.Errorf("seeded %d entries, want 16", p.Len())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHostOnTinyProblem(t *testing.T) {
	h, err := NewHost(3, DefaultConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if x := h.NewTarget(); x.Len() != 3 {
			t.Fatal("bad target")
		}
	}
}
