package karp

import (
	"fmt"

	"abs/internal/bitvec"
	"abs/internal/qubo"
)

// Coloring encodes graph k-coloring feasibility: n·k variables x_{v,c}
// ("vertex v has colour c"), with one-hot penalties per vertex and a
// conflict penalty per edge per colour. Using the module's F→E
// convention (E = 2F + const; see internal/tsp for the same
// derivation):
//
//	W_{(v,c)},{(v,c)}  = −2A        (one-hot linear term)
//	W_{(v,c)},{(v,c')} = 2A         (one-hot pair, c ≠ c')
//	W_{(u,c)},{(v,c)}  = B          ((u,v) ∈ E, same colour)
//
// A proper k-colouring reaches the minimum energy −2An exactly when it
// exists; any one-hot violation or conflict raises the energy.
type Coloring struct {
	g *Graph
	k int
	p *qubo.Problem
	// A is the one-hot penalty, B the conflict penalty.
	A, B int64
}

// EncodeColoring builds the k-coloring encoding. k must be ≥ 2.
func EncodeColoring(g *Graph, k int) (*Coloring, error) {
	if k < 2 {
		return nil, fmt.Errorf("karp: coloring needs k ≥ 2, got %d", k)
	}
	n := g.N()
	if n*k > qubo.MaxBits {
		return nil, fmt.Errorf("karp: %d vertices × %d colours exceeds %d bits", n, k, qubo.MaxBits)
	}
	const a, b = 4, 4
	c := &Coloring{g: g, k: k, A: a, B: b}
	p := qubo.New(n * k)
	p.SetName(fmt.Sprintf("color%d-%s", k, g.Name()))
	c.p = p
	idx := c.Var
	for v := 0; v < n; v++ {
		for ci := 0; ci < k; ci++ {
			p.SetWeight(idx(v, ci), idx(v, ci), -2*a)
			for cj := ci + 1; cj < k; cj++ {
				p.SetWeight(idx(v, ci), idx(v, cj), 2*a)
			}
		}
	}
	for _, e := range g.Edges() {
		for ci := 0; ci < k; ci++ {
			if err := p.AddWeight(idx(e.U, ci), idx(e.V, ci), b); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// Var maps (vertex, colour) to a bit index.
func (c *Coloring) Var(v, colour int) int { return v*c.k + colour }

// Problem returns the QUBO instance.
func (c *Coloring) Problem() *qubo.Problem { return c.p }

// FeasibleEnergy returns the energy of any proper k-colouring, −2·A·n;
// use it as the solver target.
func (c *Coloring) FeasibleEnergy() int64 { return -2 * c.A * int64(c.g.N()) }

// Decode extracts a colour assignment. It fails when any vertex's
// one-hot group is violated; conflicts are reported by Verify.
func (c *Coloring) Decode(x *bitvec.Vector) ([]int, error) {
	if x.Len() != c.p.N() {
		return nil, fmt.Errorf("karp: %d-bit vector for %d-variable coloring", x.Len(), c.p.N())
	}
	colours := make([]int, c.g.N())
	for v := 0; v < c.g.N(); v++ {
		colours[v] = -1
		for ci := 0; ci < c.k; ci++ {
			if x.Bit(c.Var(v, ci)) == 1 {
				if colours[v] >= 0 {
					return nil, fmt.Errorf("karp: vertex %d has multiple colours", v)
				}
				colours[v] = ci
			}
		}
		if colours[v] < 0 {
			return nil, fmt.Errorf("karp: vertex %d has no colour", v)
		}
	}
	return colours, nil
}

// VerifyColoring reports whether the assignment is a proper colouring
// with at most k colours.
func (c *Coloring) VerifyColoring(colours []int) bool {
	if len(colours) != c.g.N() {
		return false
	}
	for _, col := range colours {
		if col < 0 || col >= c.k {
			return false
		}
	}
	for _, e := range c.g.Edges() {
		if colours[e.U] == colours[e.V] {
			return false
		}
	}
	return true
}

// Partition encodes number partitioning: split a multiset into two
// sides with minimal difference. With S = Σ aᵢ and diff = S − 2·(side-1
// sum), diff² = S² + Σᵢ 4aᵢ(aᵢ−S)xᵢ + 8Σ_{i<j} aᵢaⱼxᵢxⱼ, so
//
//	W_ii = 4aᵢ(aᵢ−S),  W_ij = 4aᵢaⱼ,  E(X) = diff² − S².
//
// The 16-bit weight domain requires aᵢ·S ≤ 8191.
type Partition struct {
	nums []int64
	sum  int64
	p    *qubo.Problem
}

// EncodePartition builds the encoding.
func EncodePartition(nums []int64) (*Partition, error) {
	if len(nums) < 2 {
		return nil, fmt.Errorf("karp: partition needs at least 2 numbers")
	}
	var s int64
	for i, a := range nums {
		if a <= 0 {
			return nil, fmt.Errorf("karp: number %d at index %d must be positive", a, i)
		}
		s += a
	}
	p := qubo.New(len(nums))
	p.SetName("partition")
	for i, a := range nums {
		wii := 4 * a * (a - s)
		if wii < -32768 {
			return nil, fmt.Errorf("karp: aᵢ·S = %d·%d too large for 16-bit weights", a, s)
		}
		p.SetWeight(i, i, int16(wii))
		for j := i + 1; j < len(nums); j++ {
			wij := 4 * a * nums[j]
			if wij > 32767 {
				return nil, fmt.Errorf("karp: aᵢ·aⱼ = %d·%d too large for 16-bit weights", a, nums[j])
			}
			p.SetWeight(i, j, int16(wij))
		}
	}
	return &Partition{nums: append([]int64(nil), nums...), sum: s, p: p}, nil
}

// Problem returns the QUBO instance.
func (pt *Partition) Problem() *qubo.Problem { return pt.p }

// DiffFromEnergy converts an energy to the absolute side difference:
// diff² = E + S².
func (pt *Partition) DiffFromEnergy(e int64) int64 {
	d2 := e + pt.sum*pt.sum
	// Integer square root; d2 is a perfect square by construction.
	r := int64(0)
	for r*r < d2 {
		r++
	}
	return r
}

// EnergyForDiff converts a target absolute difference to an energy.
func (pt *Partition) EnergyForDiff(d int64) int64 { return d*d - pt.sum*pt.sum }

// Sides splits the numbers per the solution vector (bit 0 side / bit 1
// side) and returns the two sums.
func (pt *Partition) Sides(x *bitvec.Vector) (side0, side1 int64, err error) {
	if x.Len() != len(pt.nums) {
		return 0, 0, fmt.Errorf("karp: %d-bit vector for %d numbers", x.Len(), len(pt.nums))
	}
	for i, a := range pt.nums {
		if x.Bit(i) == 0 {
			side0 += a
		} else {
			side1 += a
		}
	}
	return side0, side1, nil
}
