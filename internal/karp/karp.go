// Package karp provides QUBO encodings for several of Karp's 21
// NP-complete problems, following the Ising-formulation catalogue of
// Lucas (2014) that the paper cites as the motivation for QUBO solvers
// (§1): maximum independent set, minimum vertex cover, graph
// k-coloring, and number partitioning.
//
// Each encoding documents its penalty constants, converts between
// problem values and QUBO energies, and decodes solver output back to
// a verified combinatorial object. Energies use the module's
// convention E(X) = Σ W_ii x_i + 2 Σ_{i<j} W_ij x_i x_j.
package karp

import (
	"fmt"

	"abs/internal/bitvec"
	"abs/internal/maxcut"
	"abs/internal/qubo"
)

// Graph re-uses the maxcut package's weighted graph with unit weights.
type Graph = maxcut.Graph

// NewGraph returns an empty n-vertex graph.
func NewGraph(n int) *Graph { return maxcut.NewGraph(n) }

// MaxIndependentSet encodes maximum independent set: maximize |S| such
// that no edge has both endpoints in S. The QUBO is
//
//	E(X) = −Σ_v x_v + 2·Σ_{(u,v)∈E} x_u x_v
//
// (W_vv = −1, W_uv = +1): selecting both endpoints of an edge gains −2
// but pays +2, so violations are never profitable and the minimum is
// −α(G), the negated independence number.
type MaxIndependentSet struct {
	g *Graph
	p *qubo.Problem
}

// EncodeMaxIndependentSet builds the encoding.
func EncodeMaxIndependentSet(g *Graph) (*MaxIndependentSet, error) {
	p := qubo.New(g.N())
	p.SetName("mis-" + g.Name())
	for v := 0; v < g.N(); v++ {
		p.SetWeight(v, v, -1)
	}
	for _, e := range g.Edges() {
		p.SetWeight(e.U, e.V, 1)
	}
	return &MaxIndependentSet{g: g, p: p}, nil
}

// Problem returns the QUBO instance.
func (m *MaxIndependentSet) Problem() *qubo.Problem { return m.p }

// SizeFromEnergy converts an energy of a violation-free solution to the
// set size.
func (m *MaxIndependentSet) SizeFromEnergy(e int64) int64 { return -e }

// EnergyForSize converts a target set size to a target energy.
func (m *MaxIndependentSet) EnergyForSize(k int64) int64 { return -k }

// Decode returns the selected vertices, repairing any edge violations
// greedily (dropping the higher-degree endpoint) so the result is
// always a valid independent set.
func (m *MaxIndependentSet) Decode(x *bitvec.Vector) ([]int, error) {
	if x.Len() != m.g.N() {
		return nil, fmt.Errorf("karp: %d-bit vector for %d-vertex graph", x.Len(), m.g.N())
	}
	in := make([]bool, m.g.N())
	for v := range in {
		in[v] = x.Bit(v) == 1
	}
	deg := m.g.Degrees()
	for _, e := range m.g.Edges() {
		if in[e.U] && in[e.V] {
			if deg[e.U] >= deg[e.V] {
				in[e.U] = false
			} else {
				in[e.V] = false
			}
		}
	}
	var set []int
	for v, ok := range in {
		if ok {
			set = append(set, v)
		}
	}
	return set, nil
}

// VerifyIndependent reports whether the vertex set is independent.
func VerifyIndependent(g *Graph, set []int) bool {
	in := make([]bool, g.N())
	for _, v := range set {
		if v < 0 || v >= g.N() || in[v] {
			return false
		}
		in[v] = true
	}
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			return false
		}
	}
	return true
}

// MinVertexCover encodes minimum vertex cover: minimize |C| such that
// every edge has an endpoint in C. With penalty A = 2,
//
//	E(X) = Σ_v (1 − A·deg(v))·x_v + 2·Σ_{(u,v)∈E} x_u x_v·(A/2)·2 + A·m
//
// concretely W_vv = 1 − 2·deg(v), W_uv = 1, and E + 2m equals the
// cover size for violation-free solutions.
type MinVertexCover struct {
	g *Graph
	p *qubo.Problem
}

// EncodeMinVertexCover builds the encoding. Weighted degrees must keep
// W_vv inside the 16-bit domain.
func EncodeMinVertexCover(g *Graph) (*MinVertexCover, error) {
	p := qubo.New(g.N())
	p.SetName("vc-" + g.Name())
	deg := g.Degrees()
	for v := 0; v < g.N(); v++ {
		w := 1 - 2*deg[v]
		if w < -32768 {
			return nil, fmt.Errorf("karp: vertex %d degree %d too large for 16-bit weights", v, deg[v])
		}
		p.SetWeight(v, v, int16(w))
	}
	for _, e := range g.Edges() {
		p.SetWeight(e.U, e.V, 1)
	}
	return &MinVertexCover{g: g, p: p}, nil
}

// Problem returns the QUBO instance.
func (m *MinVertexCover) Problem() *qubo.Problem { return m.p }

// Offset returns 2·m, the constant such that cover size = E + Offset
// for violation-free solutions.
func (m *MinVertexCover) Offset() int64 { return 2 * int64(m.g.M()) }

// SizeFromEnergy converts a violation-free energy to the cover size.
func (m *MinVertexCover) SizeFromEnergy(e int64) int64 { return e + m.Offset() }

// EnergyForSize converts a target cover size to a target energy.
func (m *MinVertexCover) EnergyForSize(k int64) int64 { return k - m.Offset() }

// Decode returns the selected cover, repairing uncovered edges by
// adding the higher-degree endpoint, so the result is always a valid
// cover.
func (m *MinVertexCover) Decode(x *bitvec.Vector) ([]int, error) {
	if x.Len() != m.g.N() {
		return nil, fmt.Errorf("karp: %d-bit vector for %d-vertex graph", x.Len(), m.g.N())
	}
	in := make([]bool, m.g.N())
	for v := range in {
		in[v] = x.Bit(v) == 1
	}
	deg := m.g.Degrees()
	for _, e := range m.g.Edges() {
		if !in[e.U] && !in[e.V] {
			if deg[e.U] >= deg[e.V] {
				in[e.U] = true
			} else {
				in[e.V] = true
			}
		}
	}
	var cover []int
	for v, ok := range in {
		if ok {
			cover = append(cover, v)
		}
	}
	return cover, nil
}

// VerifyCover reports whether the vertex set covers every edge.
func VerifyCover(g *Graph, cover []int) bool {
	in := make([]bool, g.N())
	for _, v := range cover {
		if v < 0 || v >= g.N() {
			return false
		}
		in[v] = true
	}
	for _, e := range g.Edges() {
		if !in[e.U] && !in[e.V] {
			return false
		}
	}
	return true
}
