package karp

import (
	"testing"

	"abs/internal/bitvec"
	"abs/internal/qubo"
	"abs/internal/rng"
)

// pathGraph returns the path 0-1-2-...-n-1.
func pathGraph(n int) *Graph {
	g := NewGraph(n)
	g.SetName("path")
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, 1)
	}
	return g
}

// cycleGraph returns the n-cycle.
func cycleGraph(n int) *Graph {
	g := pathGraph(n)
	g.SetName("cycle")
	g.AddEdge(n-1, 0, 1)
	return g
}

// randomGraph returns an Erdős–Rényi-ish graph.
func randomGraph(n, m int, seed uint64) *Graph {
	g := NewGraph(n)
	g.SetName("rand")
	r := rng.New(seed)
	for g.M() < m {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v, 1)
		}
	}
	return g
}

// bruteForceMIS returns the independence number by enumeration.
func bruteForceMIS(g *Graph) int {
	best := 0
	for mask := 0; mask < 1<<g.N(); mask++ {
		x := bitvec.New(g.N())
		for v := 0; v < g.N(); v++ {
			x.Set(v, (mask>>v)&1)
		}
		var set []int
		for v := 0; v < g.N(); v++ {
			if x.Bit(v) == 1 {
				set = append(set, v)
			}
		}
		if VerifyIndependent(g, set) && len(set) > best {
			best = len(set)
		}
	}
	return best
}

// bruteForceVC returns the minimum cover size by enumeration.
func bruteForceVC(g *Graph) int {
	best := g.N()
	for mask := 0; mask < 1<<g.N(); mask++ {
		var cover []int
		for v := 0; v < g.N(); v++ {
			if (mask>>v)&1 == 1 {
				cover = append(cover, v)
			}
		}
		if VerifyCover(g, cover) && len(cover) < best {
			best = len(cover)
		}
	}
	return best
}

func TestMISOptimumMatchesBruteForce(t *testing.T) {
	for _, g := range []*Graph{pathGraph(8), cycleGraph(9), randomGraph(10, 18, 1)} {
		enc, err := EncodeMaxIndependentSet(g)
		if err != nil {
			t.Fatal(err)
		}
		bx, be, err := qubo.ExactSolve(enc.Problem())
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceMIS(g)
		if got := enc.SizeFromEnergy(be); got != int64(want) {
			t.Errorf("%s: QUBO optimum gives size %d, brute force %d", g.Name(), got, want)
		}
		set, err := enc.Decode(bx)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyIndependent(g, set) {
			t.Errorf("%s: decoded set not independent", g.Name())
		}
		if len(set) != want {
			t.Errorf("%s: decoded size %d, want %d", g.Name(), len(set), want)
		}
	}
}

func TestMISDecodeRepairsViolations(t *testing.T) {
	g := pathGraph(4)
	enc, err := EncodeMaxIndependentSet(g)
	if err != nil {
		t.Fatal(err)
	}
	// All vertices selected: every edge violated.
	x := bitvec.New(4)
	for v := 0; v < 4; v++ {
		x.Set(v, 1)
	}
	set, err := enc.Decode(x)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyIndependent(g, set) {
		t.Error("repair left a violation")
	}
}

func TestVCOptimumMatchesBruteForce(t *testing.T) {
	for _, g := range []*Graph{pathGraph(7), cycleGraph(8), randomGraph(9, 14, 2)} {
		enc, err := EncodeMinVertexCover(g)
		if err != nil {
			t.Fatal(err)
		}
		bx, be, err := qubo.ExactSolve(enc.Problem())
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceVC(g)
		if got := enc.SizeFromEnergy(be); got != int64(want) {
			t.Errorf("%s: QUBO optimum gives size %d, brute force %d", g.Name(), got, want)
		}
		cover, err := enc.Decode(bx)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyCover(g, cover) {
			t.Errorf("%s: decoded set not a cover", g.Name())
		}
		if len(cover) != want {
			t.Errorf("%s: decoded size %d, want %d", g.Name(), len(cover), want)
		}
	}
}

func TestVCDecodeRepairs(t *testing.T) {
	g := pathGraph(5)
	enc, err := EncodeMinVertexCover(g)
	if err != nil {
		t.Fatal(err)
	}
	cover, err := enc.Decode(bitvec.New(5)) // empty: nothing covered
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyCover(g, cover) {
		t.Error("repair did not produce a cover")
	}
}

func TestMISVCComplementarity(t *testing.T) {
	// Gallai: α(G) + τ(G) = n.
	g := randomGraph(10, 20, 3)
	mis, err := EncodeMaxIndependentSet(g)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := EncodeMinVertexCover(g)
	if err != nil {
		t.Fatal(err)
	}
	_, misE, err := qubo.ExactSolve(mis.Problem())
	if err != nil {
		t.Fatal(err)
	}
	_, vcE, err := qubo.ExactSolve(vc.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if mis.SizeFromEnergy(misE)+vc.SizeFromEnergy(vcE) != int64(g.N()) {
		t.Errorf("α + τ = %d + %d ≠ n = %d",
			mis.SizeFromEnergy(misE), vc.SizeFromEnergy(vcE), g.N())
	}
}

func TestColoringFeasible(t *testing.T) {
	// An even cycle is 2-colourable.
	g := cycleGraph(8)
	enc, err := EncodeColoring(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	bx, be, err := qubo.ExactSolve(enc.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if be != enc.FeasibleEnergy() {
		t.Fatalf("optimal energy %d, feasible %d", be, enc.FeasibleEnergy())
	}
	colours, err := enc.Decode(bx)
	if err != nil {
		t.Fatal(err)
	}
	if !enc.VerifyColoring(colours) {
		t.Error("decoded colouring improper")
	}
}

func TestColoringInfeasible(t *testing.T) {
	// An odd cycle is not 2-colourable: the optimum must sit strictly
	// above the feasible energy.
	g := cycleGraph(7)
	enc, err := EncodeColoring(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, be, err := qubo.ExactSolve(enc.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if be <= enc.FeasibleEnergy() {
		t.Errorf("odd cycle 2-colouring energy %d ≤ feasible %d", be, enc.FeasibleEnergy())
	}
}

func TestColoringTriangleNeedsThree(t *testing.T) {
	tri := NewGraph(3)
	tri.AddEdge(0, 1, 1)
	tri.AddEdge(1, 2, 1)
	tri.AddEdge(0, 2, 1)
	two, err := EncodeColoring(tri, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, e2, err := qubo.ExactSolve(two.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= two.FeasibleEnergy() {
		t.Error("triangle 2-colourable per encoding")
	}
	three, err := EncodeColoring(tri, 3)
	if err != nil {
		t.Fatal(err)
	}
	bx, e3, err := qubo.ExactSolve(three.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if e3 != three.FeasibleEnergy() {
		t.Error("triangle not 3-colourable per encoding")
	}
	colours, err := three.Decode(bx)
	if err != nil {
		t.Fatal(err)
	}
	if !three.VerifyColoring(colours) {
		t.Error("triangle colouring improper")
	}
}

func TestColoringDecodeErrors(t *testing.T) {
	g := pathGraph(3)
	enc, err := EncodeColoring(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Decode(bitvec.New(enc.Problem().N())); err == nil {
		t.Error("uncoloured vertex decoded")
	}
	x := bitvec.New(enc.Problem().N())
	x.Set(enc.Var(0, 0), 1)
	x.Set(enc.Var(0, 1), 1)
	if _, err := enc.Decode(x); err == nil {
		t.Error("doubly-coloured vertex decoded")
	}
	if _, err := EncodeColoring(g, 1); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestPartitionPerfect(t *testing.T) {
	enc, err := EncodePartition([]int64{4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	bx, be, err := qubo.ExactSolve(enc.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if d := enc.DiffFromEnergy(be); d != 0 {
		t.Errorf("optimal difference %d, want 0 (15/15 split exists)", d)
	}
	s0, s1, err := enc.Sides(bx)
	if err != nil {
		t.Fatal(err)
	}
	if s0 != 15 || s1 != 15 {
		t.Errorf("sides %d/%d, want 15/15", s0, s1)
	}
}

func TestPartitionOddTotal(t *testing.T) {
	// Odd total: best difference is 1.
	enc, err := EncodePartition([]int64{3, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	_, be, err := qubo.ExactSolve(enc.Problem())
	if err != nil {
		t.Fatal(err)
	}
	if d := enc.DiffFromEnergy(be); d != 1 {
		t.Errorf("optimal difference %d, want 1", d)
	}
	if enc.EnergyForDiff(1) != be {
		t.Error("EnergyForDiff inversion broken")
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := EncodePartition([]int64{5}); err == nil {
		t.Error("single number accepted")
	}
	if _, err := EncodePartition([]int64{5, -2}); err == nil {
		t.Error("negative number accepted")
	}
	if _, err := EncodePartition([]int64{5000, 5000}); err == nil {
		t.Error("overflowing numbers accepted")
	}
}

func TestPartitionEnergyIdentityRandom(t *testing.T) {
	enc, err := EncodePartition([]int64{7, 11, 13, 3, 20, 9, 14})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	for trial := 0; trial < 30; trial++ {
		x := bitvec.Random(7, r)
		s0, s1, err := enc.Sides(x)
		if err != nil {
			t.Fatal(err)
		}
		d := s0 - s1
		if d < 0 {
			d = -d
		}
		if e := enc.Problem().Energy(x); e != enc.EnergyForDiff(d) {
			t.Fatalf("E = %d, want EnergyForDiff(%d) = %d", e, d, enc.EnergyForDiff(d))
		}
	}
}
