package abs_test

// This file lives outside package abs on purpose: it proves every type
// the public surface hands out is nameable by an importer. Before the
// re-exports, Options.Progress could only be fed an inferred closure —
// writing the parameter type `abs.Progress` (or naming BlockStat,
// Occupancy, Telemetry, …) did not compile because they resolved to
// internal packages.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"abs"
)

// TestReexportedTypesAreNameable exercises the re-exported field types
// by name from an external package, on a real (tiny) run.
func TestReexportedTypesAreNameable(t *testing.T) {
	var snaps atomic.Int64
	var lastProgress abs.Progress // the Options.Progress payload, by name

	opt := abs.DefaultOptions()
	opt.MaxDuration = 100 * time.Millisecond
	opt.ProgressEvery = 10 * time.Millisecond
	opt.Progress = func(p abs.Progress) {
		lastProgress = p
		snaps.Add(1)
	}
	opt.Telemetry = abs.NewTelemetry()
	opt.Tracer = abs.NewTracer(1 << 10)
	opt.Faults = abs.NewFaultPlan(1)

	res, err := abs.SolveContext(context.Background(), abs.RandomProblem(32, 9), opt)
	if err != nil {
		t.Fatal(err)
	}

	// Result field types, by name.
	var stats []abs.BlockStat = res.BlockStats
	var occ abs.Occupancy = res.Occupancy
	if len(stats) == 0 || occ.ActiveBlocks == 0 {
		t.Errorf("result lacks block stats (%d) or occupancy (%+v)", len(stats), occ)
	}
	if snaps.Load() == 0 || lastProgress.Flips == 0 {
		t.Errorf("progress callback: %d snapshots, last flips %d", snaps.Load(), lastProgress.Flips)
	}

	// Telemetry plane types, by name.
	var reg *abs.Telemetry = opt.Telemetry
	if snap := reg.Snapshot(); len(snap.Series) == 0 {
		t.Error("run registered no instruments")
	}
	var events []abs.TraceEvent = opt.Tracer.Events()
	if len(events) == 0 {
		t.Fatal("tracer recorded no events")
	}
	var kind abs.EventKind = events[0].Kind
	if kind == "" {
		t.Error("event kind is empty")
	}

	// Fault plumbing, by name.
	var counts abs.FaultCounts = opt.Faults.Counts()
	if n := counts.Crashes + counts.Stalls + counts.Corruptions; n != 0 {
		t.Errorf("empty fault plan injected %d faults", n)
	}
}

// TestReexportedServiceSurface checks the Solver-side names: job states
// compare as constants and the sentinel errors work with errors.Is.
func TestReexportedServiceSurface(t *testing.T) {
	opt := abs.DefaultOptions()
	solver, err := abs.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer solver.Close()

	j, err := solver.Submit(context.Background(), abs.RandomProblem(32, 3),
		abs.JobSpec{MaxDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Result(); !errors.Is(err, abs.ErrNotFinished) {
		t.Errorf("live job Result error = %v, want ErrNotFinished", err)
	}

	var st abs.JobStatus = j.Status()
	var state abs.JobState = st.State
	if state != abs.JobQueued && state != abs.JobRunning {
		t.Errorf("fresh job state = %s", state)
	}
	if state.Terminal() {
		t.Errorf("state %s is terminal before the job ran", state)
	}

	j.Cancel()
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := j.Status().State; got != abs.JobCancelled {
		t.Errorf("state after cancel = %s, want %s", got, abs.JobCancelled)
	}

	if err := solver.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Submit(context.Background(), abs.RandomProblem(8, 1), abs.JobSpec{}); !errors.Is(err, abs.ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}

// TestReexportedClusterSurface runs a miniature one-process cluster
// entirely through the public names: coordinator, local transport,
// worker, report and sentinel errors.
func TestReexportedClusterSurface(t *testing.T) {
	p := abs.RandomProblem(32, 11)
	coord, err := abs.NewCoordinator(p, abs.CoordinatorConfig{
		Seed:     7,
		MaxFlips: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var tr abs.ClusterTransport = abs.NewLocalTransport(coord)
	w, err := abs.NewWorker(abs.WorkerConfig{
		Transport: tr,
		WorkerID:  "pub-1",
		Device:    abs.ScaledDevice(1),
		Exchange:  25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var report *abs.WorkerReport
	if report, err = w.Run(ctx); err != nil {
		t.Fatalf("worker Run: %v", err)
	}
	if !report.CoordinatorDone {
		t.Error("worker never saw the coordinator finish")
	}

	var res abs.ClusterResult = coord.Status()
	if !res.BestKnown || p.Energy(res.Best) != res.BestEnergy {
		t.Errorf("cluster best (%d, %v) is not an honest pool entry", res.BestEnergy, res.BestKnown)
	}

	coord.Close()
	if _, err := tr.Heartbeat(ctx, abs.HeartbeatRequest{WorkerID: "pub-1"}); !errors.Is(err, abs.ErrClusterDone) {
		t.Errorf("heartbeat after close = %v, want ErrClusterDone", err)
	}
}

// TestReexportedDurabilityAndChaosSurface drives the crash-recovery and
// fault-injection plumbing entirely through the public names: StoreDir,
// a checkpointing coordinator, RestoreCoordinator, and a chaos-wrapped
// transport with its counts and sentinel error.
func TestReexportedDurabilityAndChaosSurface(t *testing.T) {
	var st abs.Store
	st, err := abs.StoreDir(t.TempDir())
	if err != nil {
		t.Fatalf("StoreDir: %v", err)
	}
	defer st.Close()

	p := abs.RandomProblem(32, 21)
	cfg := abs.CoordinatorConfig{
		Seed:       7,
		MaxFlips:   20_000,
		Store:      st,
		Checkpoint: 10 * time.Millisecond,
	}
	coord, err := abs.NewCoordinator(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// A delay-only chaos schedule: visible in the counts, harmless to
	// the run.
	var spec abs.ChaosSpec = abs.ChaosSpec{
		Seed:     3,
		DelayMin: time.Microsecond,
		DelayMax: 100 * time.Microsecond,
	}
	var ctr *abs.ChaosTransport = abs.NewChaosTransport(abs.NewLocalTransport(coord), spec)
	w, err := abs.NewWorker(abs.WorkerConfig{
		Transport: ctr,
		WorkerID:  "chaos-pub",
		Device:    abs.ScaledDevice(1),
		Exchange:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := w.Run(ctx); err != nil {
		t.Fatalf("worker Run under chaos delay: %v", err)
	}
	var counts abs.ChaosCounts = ctr.Counts()
	if counts.Delayed == 0 {
		t.Errorf("chaos transport never delayed a call: %+v", counts)
	}

	pre := coord.Status()
	coord.Close()

	// The run checkpointed through the public Store: a new incarnation
	// restores the same best.
	c2, restored, err := abs.RestoreCoordinator(p, cfg)
	if err != nil {
		t.Fatalf("RestoreCoordinator: %v", err)
	}
	defer c2.Close()
	if !restored {
		t.Fatal("RestoreCoordinator found no checkpoint")
	}
	if got := c2.Status(); !got.BestKnown || got.BestEnergy > pre.BestEnergy {
		t.Errorf("restored best (%d, known %v) regressed from %d", got.BestEnergy, got.BestKnown, pre.BestEnergy)
	}

	// A certain-drop schedule surfaces the sentinel by name.
	drop := abs.NewChaosTransport(abs.NewLocalTransport(c2), abs.ChaosSpec{Seed: 1, Drop: 1})
	if _, err := drop.Heartbeat(ctx, abs.HeartbeatRequest{WorkerID: "x"}); !errors.Is(err, abs.ErrChaosInjected) {
		t.Errorf("dropped call = %v, want ErrChaosInjected", err)
	}
}

// TestReexportedDiversitySurface checks the DABS names: the spec type,
// its parser and the two canonical constructors, driven through a real
// diversified race run whose BackendStats expose the allocator split.
func TestReexportedDiversitySurface(t *testing.T) {
	var spec abs.DiversitySpec = abs.DefaultDiversitySpec()
	if spec.Buckets == 0 {
		t.Fatal("default diversity spec has no buckets")
	}
	if static := abs.StaticDiversitySpec(); static.Floor < 1.0 {
		t.Errorf("static spec floor %v does not freeze the allocator", static.Floor)
	}
	parsed, err := abs.ParseDiversitySpec("radius=2,floor=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Radius != 2 || parsed.Floor != 0.2 {
		t.Fatalf("ParseDiversitySpec = %+v", parsed)
	}
	if _, err := abs.ParseDiversitySpec("turbo=1"); err == nil {
		t.Error("ParseDiversitySpec accepted an unknown key")
	}

	opt := abs.DefaultOptions()
	opt.MaxDuration = 100 * time.Millisecond
	opt.Backend = abs.BackendRace
	opt.Diversity = parsed
	res, err := abs.SolveContext(context.Background(), abs.RandomProblem(32, 11), opt)
	if err != nil {
		t.Fatal(err)
	}
	var stat abs.BackendStat // the per-backend tally, by name
	total := 0
	for _, stat = range res.BackendStats {
		total += stat.Units
	}
	if total != res.Blocks {
		t.Errorf("allocator units sum %d != %d blocks", total, res.Blocks)
	}
}
