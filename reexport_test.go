package abs_test

// This file lives outside package abs on purpose: it proves every type
// the public surface hands out is nameable by an importer. Before the
// re-exports, Options.Progress could only be fed an inferred closure —
// writing the parameter type `abs.Progress` (or naming BlockStat,
// Occupancy, Telemetry, …) did not compile because they resolved to
// internal packages.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"abs"
)

// TestReexportedTypesAreNameable exercises the re-exported field types
// by name from an external package, on a real (tiny) run.
func TestReexportedTypesAreNameable(t *testing.T) {
	var snaps atomic.Int64
	var lastProgress abs.Progress // the Options.Progress payload, by name

	opt := abs.DefaultOptions()
	opt.MaxDuration = 100 * time.Millisecond
	opt.ProgressEvery = 10 * time.Millisecond
	opt.Progress = func(p abs.Progress) {
		lastProgress = p
		snaps.Add(1)
	}
	opt.Telemetry = abs.NewTelemetry()
	opt.Tracer = abs.NewTracer(1 << 10)
	opt.Faults = abs.NewFaultPlan(1)

	res, err := abs.SolveContext(context.Background(), abs.RandomProblem(32, 9), opt)
	if err != nil {
		t.Fatal(err)
	}

	// Result field types, by name.
	var stats []abs.BlockStat = res.BlockStats
	var occ abs.Occupancy = res.Occupancy
	if len(stats) == 0 || occ.ActiveBlocks == 0 {
		t.Errorf("result lacks block stats (%d) or occupancy (%+v)", len(stats), occ)
	}
	if snaps.Load() == 0 || lastProgress.Flips == 0 {
		t.Errorf("progress callback: %d snapshots, last flips %d", snaps.Load(), lastProgress.Flips)
	}

	// Telemetry plane types, by name.
	var reg *abs.Telemetry = opt.Telemetry
	if snap := reg.Snapshot(); len(snap.Series) == 0 {
		t.Error("run registered no instruments")
	}
	var events []abs.TraceEvent = opt.Tracer.Events()
	if len(events) == 0 {
		t.Fatal("tracer recorded no events")
	}
	var kind abs.EventKind = events[0].Kind
	if kind == "" {
		t.Error("event kind is empty")
	}

	// Fault plumbing, by name.
	var counts abs.FaultCounts = opt.Faults.Counts()
	if n := counts.Crashes + counts.Stalls + counts.Corruptions; n != 0 {
		t.Errorf("empty fault plan injected %d faults", n)
	}
}

// TestReexportedServiceSurface checks the Solver-side names: job states
// compare as constants and the sentinel errors work with errors.Is.
func TestReexportedServiceSurface(t *testing.T) {
	opt := abs.DefaultOptions()
	solver, err := abs.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer solver.Close()

	j, err := solver.Submit(context.Background(), abs.RandomProblem(32, 3),
		abs.JobSpec{MaxDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Result(); !errors.Is(err, abs.ErrNotFinished) {
		t.Errorf("live job Result error = %v, want ErrNotFinished", err)
	}

	var st abs.JobStatus = j.Status()
	var state abs.JobState = st.State
	if state != abs.JobQueued && state != abs.JobRunning {
		t.Errorf("fresh job state = %s", state)
	}
	if state.Terminal() {
		t.Errorf("state %s is terminal before the job ran", state)
	}

	j.Cancel()
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := j.Status().State; got != abs.JobCancelled {
		t.Errorf("state after cancel = %s, want %s", got, abs.JobCancelled)
	}

	if err := solver.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Submit(context.Background(), abs.RandomProblem(8, 1), abs.JobSpec{}); !errors.Is(err, abs.ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}
