GO ?= go

# Build identity, stamped into internal/telemetry and surfaced as the
# abs_build_info gauge on every /metrics endpoint. Overridable so
# release pipelines can pin an exact version string.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse HEAD 2>/dev/null || echo unknown)
LDFLAGS  = -X abs/internal/telemetry.version=$(VERSION) -X abs/internal/telemetry.commit=$(COMMIT)

.PHONY: build test vet race check ci bench bench-dense obs-demo obs-smoke backend-smoke diversity-smoke serve apicheck cluster-demo

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 30m ./...

# The standard gate: everything a change must pass before it lands.
check:
	./scripts/check.sh

# The CI short lane, exactly as .github/workflows/ci.yml runs it:
# both vet flavours, both builds, the API-surface gate and the -short
# test suite. `make check` remains the full gate (-race, cluster e2e).
ci:
	$(GO) vet ./...
	$(GO) vet -tags abstelemetryoff ./...
	$(GO) build ./...
	$(GO) build -tags abstelemetryoff ./...
	sh scripts/apicheck.sh
	$(GO) test -short ./...

# API-surface gate alone; APICHECK_UPDATE=1 make apicheck regenerates
# the snapshot after an intentional change.
apicheck:
	sh scripts/apicheck.sh

# Long-lived HTTP solver service on a small simulated fleet.
serve:
	$(GO) run ./cmd/abs-serve -gpus 2 -sms 2

bench:
	$(GO) run ./cmd/abs-bench -all -scale quick

# Scalar-vs-batched dense-kernel report with the ≥2× gate, exactly as
# CI's bench-smoke lane runs it (BENCH_pr10.json is the committed
# medium-scale run with the ≥3× bar).
bench-dense:
	$(GO) run ./cmd/abs-bench -dense-report bench-dense.json -assert-dense-ratio 2 -scale quick

# Observability demo: a short solve with the live telemetry endpoint
# up, scraped once mid-run with curl. Needs nothing beyond the Go
# toolchain and curl.
# Multi-node demo on loopback: one coordinator, two workers, a status
# scrape mid-run. The coordinator lingers briefly after the budget so
# the workers can flush their final publications and exit on their own.
cluster-demo:
	$(GO) build -o /tmp/abs-serve ./cmd/abs-serve
	$(GO) build -o /tmp/abs-worker ./cmd/abs-worker
	/tmp/abs-serve -coordinator -random-n 256 -seed 42 -time 8s \
		-addr 127.0.0.1:8081 & \
	sleep 1 && \
	/tmp/abs-worker -coordinator http://127.0.0.1:8081 -id node-a -sms 1 & \
	/tmp/abs-worker -coordinator http://127.0.0.1:8081 -id node-b -sms 1 & \
	sleep 5 && \
	echo "--- /v1/cluster/status ---" && \
	curl -sf http://127.0.0.1:8081/v1/cluster/status && echo && \
	echo "--- waiting for the run to finish ---" && \
	wait

# Observability smoke: boots abs-serve, runs one job, and asserts the
# operator surface end to end — build info and latency histograms on
# /metrics, a parseable causal trace at /v1/jobs/{id}/trace. CI runs
# this in the short lane.
obs-smoke:
	./scripts/obs-smoke.sh

# Solver-backend smoke: boots abs-serve with the race meta-backend,
# asserts /v1/backends, a race-pinned job, the 400 on unknown names and
# the per-backend ingest counters on /metrics. CI runs this in the
# short lane.
backend-smoke:
	./scripts/backend-smoke.sh

# Diversity smoke: boots abs-serve with the race backend under a DABS
# spec and asserts the abs_alloc_units gauges move (the adaptive
# allocator reassigns units) and the pool occupies >= 2 distance
# buckets. CI runs this in the short lane.
diversity-smoke:
	./scripts/diversity-smoke.sh

obs-demo:
	$(GO) build -o /tmp/abs-solve ./cmd/abs-solve
	$(GO) run ./cmd/qubogen -kind random -n 512 -seed 42 -out /tmp/obs-demo.qubo
	/tmp/abs-solve -file /tmp/obs-demo.qubo -time 6s -gpus 2 \
		-metrics-addr 127.0.0.1:9090 -trace-out /tmp/obs-demo-trace.jsonl -v & \
	sleep 3 && \
	echo "--- /metrics scrape ---" && \
	curl -sf http://127.0.0.1:9090/metrics | grep -E '^abs_' | head -25 && \
	echo "--- waiting for solve to finish ---" && \
	wait
	@echo "trace events: $$(wc -l < /tmp/obs-demo-trace.jsonl) (JSONL at /tmp/obs-demo-trace.jsonl)"
