GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 30m ./...

# The standard gate: everything a change must pass before it lands.
check:
	./scripts/check.sh

bench:
	$(GO) run ./cmd/abs-bench -all -scale quick
