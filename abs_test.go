package abs

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeQuickstart(t *testing.T) {
	p := RandomProblem(64, 42)
	res, err := SolveFor(p, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEnergy >= 0 {
		t.Errorf("no improvement on dense random instance: %d", res.BestEnergy)
	}
	if got := p.Energy(res.Best); got != res.BestEnergy {
		t.Errorf("returned vector energy %d != %d", got, res.BestEnergy)
	}
}

func TestFacadeSolveToTarget(t *testing.T) {
	p := RandomProblem(24, 7)
	_, optE, err := ExactSolve(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveToTarget(p, optE, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget || res.BestEnergy > optE {
		t.Errorf("target %d not reached: best %d", optE, res.BestEnergy)
	}
}

func TestFacadeIO(t *testing.T) {
	p := RandomProblem(16, 3)
	p.SetName("io-test")
	var sb strings.Builder
	if err := WriteProblem(&sb, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProblem(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != 16 || q.Name() != "io-test" {
		t.Errorf("round trip: n=%d name=%q", q.N(), q.Name())
	}
	var bb strings.Builder
	if err := WriteProblemBinary(&bb, p); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProblemBinary(strings.NewReader(bb.String())); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBaseline(t *testing.T) {
	p := RandomProblem(48, 5)
	x, e, err := SimulatedAnnealingBaseline(p, 50*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Energy(x); got != e {
		t.Errorf("baseline vector energy %d != %d", got, e)
	}
}

func TestFacadeDevices(t *testing.T) {
	if Turing2080Ti().SMs != 68 {
		t.Error("Turing spec wrong")
	}
	if ScaledDevice(3).SMs != 3 {
		t.Error("scaled spec wrong")
	}
	if !strings.Contains(Describe(RandomProblem(8, 1)), "8 bits") {
		t.Error("Describe output wrong")
	}
}

func TestFacadePresolve(t *testing.T) {
	p := NewProblem(10)
	for i := 0; i < 10; i++ {
		p.SetWeight(i, i, -40) // every variable persistently one
	}
	res, err := Presolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced != nil {
		t.Fatalf("expected full fixing, %d free vars remain", res.Reduced.N())
	}
	x, err := res.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if x.OnesCount() != 10 {
		t.Errorf("expanded solution has %d ones, want 10", x.OnesCount())
	}
	if p.Energy(x) != -400 {
		t.Errorf("energy %d, want -400", p.Energy(x))
	}
}
