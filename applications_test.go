package abs

import (
	"testing"
	"time"
)

func TestSolveMaxCutFacade(t *testing.T) {
	// K_{3,3}: optimal cut is 9.
	g := NewGraph(6)
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			if err := g.AddEdge(u, v, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := SolveMaxCut(g, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 9 {
		t.Errorf("cut = %d, want 9", res.Cut)
	}
	if res.Side.Len() != 6 {
		t.Error("partition vector wrong length")
	}
}

func TestSolveTSPFacade(t *testing.T) {
	inst := RandomTSP(8, 3)
	res, err := SolveTSP(inst, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateTour(res.Tour); err != nil {
		t.Fatalf("returned tour invalid: %v", err)
	}
	if got, _ := inst.TourLength(res.Tour); got != res.Length {
		t.Errorf("length %d does not match tour %d", res.Length, got)
	}
	// The warm start is a nearest-neighbour tour, so the result must be
	// at least that good.
	nnLen, err := inst.TourLength(nnTour(inst))
	if err != nil {
		t.Fatal(err)
	}
	if res.Length > nnLen {
		t.Errorf("result %d worse than its NN warm start %d", res.Length, nnLen)
	}
}

// nnTour reproduces the warm start used by SolveTSP for comparison.
func nnTour(inst *TSPInstance) []int {
	c := inst.Cities()
	tour := make([]int, 0, c)
	used := make([]bool, c)
	cur := 0
	tour = append(tour, 0)
	used[0] = true
	for len(tour) < c {
		best, bestD := -1, int32(1)<<30
		for v := 0; v < c; v++ {
			if !used[v] && inst.Dist(cur, v) < bestD {
				best, bestD = v, inst.Dist(cur, v)
			}
		}
		tour = append(tour, best)
		used[best] = true
		cur = best
	}
	return tour
}

func TestSolveIsingFacade(t *testing.T) {
	m := NewIsingModel(10)
	for i := 0; i < 9; i++ {
		m.SetJ(i, i+1, 4) // ferromagnetic chain: ground state all-aligned
	}
	res, err := SolveIsing(m, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Ground state of a ferromagnetic chain: all spins equal, H = −9·4.
	if res.H != -36 {
		t.Errorf("H = %d, want -36", res.H)
	}
	first := res.Spins[0]
	for i, s := range res.Spins {
		if s != first {
			t.Errorf("spin %d misaligned in ferromagnetic ground state", i)
		}
	}
}

func TestExactBranchAndBoundFacade(t *testing.T) {
	p := RandomProblem(14, 9)
	_, want, err := ExactSolve(p)
	if err != nil {
		t.Fatal(err)
	}
	x, e, err := ExactBranchAndBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if e != want || p.Energy(x) != e {
		t.Errorf("B&B facade: %d, want %d", e, want)
	}
	if _, _, err := ExactBranchAndBound(RandomProblem(64, 1)); err == nil {
		t.Error("oversized B&B accepted")
	}
}
