// Package abs is an open reproduction of "Adaptive Bulk Search: Solving
// Quadratic Unconstrained Binary Optimization Problems on Multiple GPUs"
// (Yasudo et al., ICPP 2020) in pure Go.
//
// Adaptive Bulk Search combines a host-side genetic algorithm with
// thousands of asynchronous device-side local searches, each maintaining
// the full neighbourhood-energy vector Δ so that every bit flip
// evaluates n candidate solutions at O(1) amortized cost per solution.
// This module reimplements the complete system — the O(1)-efficiency
// incremental search (Algorithms 1–5 of the paper), the genetic host,
// the asynchronous target/solution buffers, and a virtual multi-GPU
// substrate that models NVIDIA Turing occupancy and throughput while
// executing every block as a goroutine — together with the paper's
// three benchmark families (G-set-style Max-Cut, TSPLIB-style TSP, and
// dense 16-bit random QUBO) and a harness regenerating every table and
// figure of its evaluation.
//
// Quick start:
//
//	p := abs.RandomProblem(1024, 42)     // dense 16-bit random instance
//	opt := abs.DefaultOptions()
//	opt.MaxDuration = 2 * time.Second
//	res, err := abs.Solve(p, opt)
//	if err != nil { ... }
//	fmt.Println(res.BestEnergy, res.SearchRate)
//
// See examples/ for Max-Cut, TSP and number-partitioning applications,
// cmd/abs-solve for the CLI, and cmd/abs-bench for the experiment
// reproduction report.
package abs
