#!/bin/sh
# API surface gate: the exported surface of package abs is snapshotted
# into api/abs.txt; any drift fails the check until the snapshot is
# regenerated and committed alongside the change — so every API change
# is a reviewed, deliberate diff.
#
#   scripts/apicheck.sh                  compare surface to snapshot
#   APICHECK_UPDATE=1 scripts/apicheck.sh   regenerate the snapshot
set -eu
cd "$(dirname "$0")/.."

# Guard: the cd above must have landed at the repository root. When it
# did not (symlinked or copied script, exotic $0), every later step
# would fail with a confusing Go error; fail fast and say why instead.
if ! grep -q '^module abs$' go.mod 2>/dev/null; then
	echo "$(basename "$0"): must run from the abs repository root (go.mod with 'module abs' not found in $(pwd))" >&2
	echo "$(basename "$0"): invoke as scripts/$(basename "$0") from the checkout root" >&2
	exit 2
fi

snapshot=api/abs.txt
current="$(mktemp)"
trap 'rm -f "$current"' EXIT

go doc -all . >"$current"

if [ "${APICHECK_UPDATE:-}" = "1" ]; then
	mkdir -p api
	cp "$current" "$snapshot"
	echo "apicheck: snapshot updated ($snapshot)"
	exit 0
fi

if [ ! -f "$snapshot" ]; then
	echo "apicheck: missing $snapshot — run APICHECK_UPDATE=1 scripts/apicheck.sh" >&2
	exit 1
fi

if ! diff -u "$snapshot" "$current"; then
	echo "" >&2
	echo "apicheck: public API surface drifted from $snapshot." >&2
	echo "apicheck: if the change is intentional, regenerate with:" >&2
	echo "apicheck:   APICHECK_UPDATE=1 scripts/apicheck.sh" >&2
	echo "apicheck: and commit the snapshot with the code change." >&2
	exit 1
fi
echo "apicheck: surface matches $snapshot"
