#!/bin/sh
# Diversity smoke: boot abs-serve with the race meta-backend and a DABS
# spec (admission radius on, fast allocator cadence) and assert the
# diversity-control surface end to end —
#   * /metrics carries the abs_alloc_units{backend=...} gauges and they
#     MOVE: the adaptive allocator performs at least one reassignment
#     (abs_alloc_reassignments_total > 0) while the job runs;
#   * the distance-bucketed pool reports at least 2 occupied buckets
#     (abs_pool_distance_buckets_occupied >= 2);
#   * the unit gauges always account for the whole fleet (sum > 0,
#     spread across the portfolio members).
# Needs only the Go toolchain and curl.
set -eu

cd "$(dirname "$0")/.."

# Guard: the cd above must have landed at the repository root. When it
# did not (symlinked or copied script, exotic $0), every later step
# would fail with a confusing Go error; fail fast and say why instead.
if ! grep -q '^module abs$' go.mod 2>/dev/null; then
	echo "$(basename "$0"): must run from the abs repository root (go.mod with 'module abs' not found in $(pwd))" >&2
	echo "$(basename "$0"): invoke as scripts/$(basename "$0") from the checkout root" >&2
	exit 2
fi

GO=${GO:-go}

TMP=$(mktemp -d)
SRV_PID=
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "diversity-smoke: FAIL: $*" >&2
	if [ -s "$TMP/serve.log" ]; then
		echo "--- abs-serve log ---" >&2
		cat "$TMP/serve.log" >&2
	fi
	if [ -s "$TMP/metrics.prom" ]; then
		echo "--- last /metrics (abs_alloc_*, abs_pool_*) ---" >&2
		grep -E '^abs_(alloc|pool)_' "$TMP/metrics.prom" >&2 || true
	fi
	exit 1
}

echo "diversity-smoke: building abs-serve"
$GO build -o "$TMP/abs-serve" ./cmd/abs-serve

# Fast allocator cadence so the smoke sees movement within seconds;
# radius 2 turns the Hamming admission policy on for every job.
"$TMP/abs-serve" -addr 127.0.0.1:0 -gpus 2 -sms 2 -backend race \
	-diversity "radius=2,floor=0.1,window=2s,interval=200ms" \
	>"$TMP/serve.log" 2>&1 &
SRV_PID=$!

BASE=
i=0
while [ $i -lt 50 ]; do
	BASE=$(sed -n 's#.*listening on http://\([^/]*\)/v1/jobs.*#\1#p' "$TMP/serve.log" | head -1)
	[ -n "$BASE" ] && break
	kill -0 "$SRV_PID" 2>/dev/null || fail "abs-serve exited before listening"
	sleep 0.2
	i=$((i + 1))
done
[ -n "$BASE" ] || fail "no listen address after 10s"
echo "diversity-smoke: abs-serve on $BASE (race + DABS spec)"

SUBMIT=$(curl -sf -X POST "http://$BASE/v1/jobs" \
	-d '{"random": {"n": 64, "seed": 7}, "time": "20s", "backend": "race", "name": "diversity-smoke"}') ||
	fail "job submit"
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":[[:space:]]*"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "submit reply has no job id: $SUBMIT"
echo "diversity-smoke: job $ID running"

# Poll /metrics until every assertion holds (or time out at ~15s).
UNITS_OK=
MOVED=
BUCKETS_OK=
i=0
while [ $i -lt 50 ]; do
	curl -sf "http://$BASE/metrics" >"$TMP/metrics.prom" || fail "/metrics scrape"

	# The allocator's unit gauges: per-member series summing over zero.
	if [ -z "$UNITS_OK" ]; then
		SERIES=$(grep -c '^abs_alloc_units{backend=' "$TMP/metrics.prom" || true)
		SUM=$(awk -F' ' '/^abs_alloc_units\{backend=/ { s += $2 } END { print s+0 }' "$TMP/metrics.prom")
		if [ "$SERIES" -ge 2 ] && [ "$SUM" -gt 0 ]; then
			UNITS_OK=1
			echo "diversity-smoke: abs_alloc_units up ($SERIES members, $SUM units)"
		fi
	fi

	# The gauges must MOVE: the adaptive controller reassigns units.
	if [ -z "$MOVED" ]; then
		REASSIGNS=$(awk -F' ' '/^abs_alloc_reassignments_total / { print int($2) }' "$TMP/metrics.prom")
		if [ "${REASSIGNS:-0}" -gt 0 ]; then
			MOVED=1
			echo "diversity-smoke: allocator moved units ($REASSIGNS reassignments)"
		fi
	fi

	# The distance-bucketed pool keeps spread: >= 2 occupied buckets.
	if [ -z "$BUCKETS_OK" ]; then
		BUCKETS=$(awk -F' ' '/^abs_pool_distance_buckets_occupied / { print int($2) }' "$TMP/metrics.prom")
		if [ "${BUCKETS:-0}" -ge 2 ]; then
			BUCKETS_OK=1
			echo "diversity-smoke: pool occupies $BUCKETS distance buckets"
		fi
	fi

	[ -n "$UNITS_OK" ] && [ -n "$MOVED" ] && [ -n "$BUCKETS_OK" ] && break
	sleep 0.3
	i=$((i + 1))
done
[ -n "$UNITS_OK" ] || fail "abs_alloc_units gauges never appeared with a positive sum"
[ -n "$MOVED" ] || fail "abs_alloc_reassignments_total never advanced (allocator did not move)"
[ -n "$BUCKETS_OK" ] || fail "abs_pool_distance_buckets_occupied never reached 2"

# The job is still within budget: cancel it, we have what we came for.
curl -sf -X DELETE "http://$BASE/v1/jobs/$ID" >/dev/null || true

kill "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
echo "diversity-smoke: PASS"
