#!/bin/sh
# Backend smoke: boot abs-serve with the race meta-backend as the
# service default and assert the solver-backend surface end to end —
#   * GET /v1/backends lists every registered backend (straight, sb,
#     tabu, race);
#   * a job that names "backend": "race" runs and reports backend
#     "race" in its result;
#   * a bogus backend name is a 400 whose body lists the registry;
#   * /metrics carries the per-backend abs_backend_* ingest counters.
# Needs only the Go toolchain and curl.
set -eu

cd "$(dirname "$0")/.."

# Guard: the cd above must have landed at the repository root. When it
# did not (symlinked or copied script, exotic $0), every later step
# would fail with a confusing Go error; fail fast and say why instead.
if ! grep -q '^module abs$' go.mod 2>/dev/null; then
	echo "$(basename "$0"): must run from the abs repository root (go.mod with 'module abs' not found in $(pwd))" >&2
	echo "$(basename "$0"): invoke as scripts/$(basename "$0") from the checkout root" >&2
	exit 2
fi

GO=${GO:-go}

TMP=$(mktemp -d)
SRV_PID=
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "backend-smoke: FAIL: $*" >&2
	if [ -s "$TMP/serve.log" ]; then
		echo "--- abs-serve log ---" >&2
		cat "$TMP/serve.log" >&2
	fi
	exit 1
}

echo "backend-smoke: building abs-serve"
$GO build -o "$TMP/abs-serve" ./cmd/abs-serve

"$TMP/abs-serve" -addr 127.0.0.1:0 -gpus 1 -sms 1 -backend race >"$TMP/serve.log" 2>&1 &
SRV_PID=$!

# The service binds an ephemeral port; read it off the listen line.
BASE=
i=0
while [ $i -lt 50 ]; do
	BASE=$(sed -n 's#.*listening on http://\([^/]*\)/v1/jobs.*#\1#p' "$TMP/serve.log" | head -1)
	[ -n "$BASE" ] && break
	kill -0 "$SRV_PID" 2>/dev/null || fail "abs-serve exited before listening"
	sleep 0.2
	i=$((i + 1))
done
[ -n "$BASE" ] || fail "no listen address after 10s"
echo "backend-smoke: abs-serve on $BASE (default backend: race)"

# The registry listing.
LIST=$(curl -sf "http://$BASE/v1/backends") || fail "GET /v1/backends"
for want in straight sb tabu race; do
	printf '%s' "$LIST" | grep -q "\"name\":[[:space:]]*\"$want\"" ||
		fail "/v1/backends missing \"$want\": $LIST"
done
echo "backend-smoke: /v1/backends lists the registry"

# A job pinned to the race meta-backend.
SUBMIT=$(curl -sf -X POST "http://$BASE/v1/jobs" \
	-d '{"random": {"n": 32, "seed": 7}, "max_flips": 200000, "backend": "race", "name": "backend-smoke"}') ||
	fail "job submit"
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":[[:space:]]*"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "submit reply has no job id: $SUBMIT"

STATE=
i=0
while [ $i -lt 150 ]; do
	STATE=$(curl -sf "http://$BASE/v1/jobs/$ID" | sed -n 's/.*"state":[[:space:]]*"\([^"]*\)".*/\1/p')
	[ "$STATE" = done ] && break
	[ "$STATE" = failed ] && fail "job failed"
	sleep 0.2
	i=$((i + 1))
done
[ "$STATE" = done ] || fail "job still '$STATE' after 30s"

FINAL=$(curl -sf "http://$BASE/v1/jobs/$ID") || fail "final job fetch"
printf '%s' "$FINAL" | grep -q '"backend":[[:space:]]*"race"' ||
	fail "result does not report backend \"race\": $FINAL"
echo "backend-smoke: job $ID done on the race backend"

# An unknown backend is a 400 that lists the registry.
CODE=$(curl -s -o "$TMP/bad.json" -w '%{http_code}' -X POST "http://$BASE/v1/jobs" \
	-d '{"random": {"n": 32, "seed": 7}, "max_flips": 1000, "backend": "columnar"}')
[ "$CODE" = 400 ] || fail "unknown backend returned HTTP $CODE, want 400"
for want in straight sb tabu race; do
	grep -q "$want" "$TMP/bad.json" ||
		fail "400 body does not list \"$want\": $(cat "$TMP/bad.json")"
done
echo "backend-smoke: unknown backend rejected with the registry listed"

# The per-backend ingest counters on /metrics.
curl -sf "http://$BASE/metrics" >"$TMP/metrics.prom" || fail "/metrics scrape"
grep -q '^abs_backend_inserted_total{backend=' "$TMP/metrics.prom" ||
	fail "/metrics missing abs_backend_inserted_total series"
grep -q '^abs_backend_improvements_total{backend=' "$TMP/metrics.prom" ||
	fail "/metrics missing abs_backend_improvements_total series"
echo "backend-smoke: metrics ok ($(grep -c '^abs_backend_' "$TMP/metrics.prom") abs_backend_* samples)"

kill "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
echo "backend-smoke: PASS"
