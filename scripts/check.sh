#!/bin/sh
# Standard development gate: vet + build + full test suite under the
# race detector. Run from anywhere; exits non-zero on first failure.
set -eu
cd "$(dirname "$0")/.."

# Guard: the cd above must have landed at the repository root. When it
# did not (symlinked or copied script, exotic $0), every later step
# would fail with a confusing Go error; fail fast and say why instead.
if ! grep -q '^module abs$' go.mod 2>/dev/null; then
	echo "$(basename "$0"): must run from the abs repository root (go.mod with 'module abs' not found in $(pwd))" >&2
	echo "$(basename "$0"): invoke as scripts/$(basename "$0") from the checkout root" >&2
	exit 2
fi

echo "== go vet =="
go vet ./...

echo "== go vet (telemetry off) =="
# The abstelemetryoff tag compiles telemetry.Enabled to false so the
# instrumentation dead-codes away; both build flavours must stay clean.
go vet -tags abstelemetryoff ./...

echo "== go build =="
go build ./...

echo "== go build (telemetry off) =="
go build -tags abstelemetryoff ./...

echo "== api surface =="
sh scripts/apicheck.sh

echo "== go test -race =="
# Generous timeout: the paper-shape bench tests launch thousands of
# block goroutines, which race instrumentation slows considerably on
# small machines.
go test -race -timeout 30m ./...

echo "== cluster loopback e2e (-race) =="
# The multi-node acceptance run: coordinator + two HTTP workers over
# loopback, one partitioned mid-run. Part of ./... above; repeated
# here by name so a regression in the distributed path fails loudly
# under its own heading.
go test -race -timeout 10m -count=1 -run 'TestClusterLoopbackE2E' ./internal/cluster/

echo "check.sh: all green"
