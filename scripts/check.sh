#!/bin/sh
# Standard development gate: vet + build + full test suite under the
# race detector. Run from anywhere; exits non-zero on first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go vet (telemetry off) =="
# The abstelemetryoff tag compiles telemetry.Enabled to false so the
# instrumentation dead-codes away; both build flavours must stay clean.
go vet -tags abstelemetryoff ./...

echo "== go build =="
go build ./...

echo "== go build (telemetry off) =="
go build -tags abstelemetryoff ./...

echo "== api surface =="
sh scripts/apicheck.sh

echo "== go test -race =="
# Generous timeout: the paper-shape bench tests launch thousands of
# block goroutines, which race instrumentation slows considerably on
# small machines.
go test -race -timeout 30m ./...

echo "check.sh: all green"
