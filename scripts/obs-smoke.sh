#!/bin/sh
# Observability smoke: boot abs-serve with stamped build identity, run
# one quick job, and assert the operator surface end to end —
#   * /metrics carries abs_build_info (the ldflags stamp), the uptime
#     gauge and native histogram _bucket series;
#   * /v1/jobs/{id}/trace returns a parseable NDJSON causal trace and a
#     well-formed Chrome trace (?format=chrome) holding the job's
#     lifecycle spans.
# Needs only the Go toolchain, curl and (preferably) python3 — without
# python3 the trace check degrades to grep-level shape assertions.
set -eu

cd "$(dirname "$0")/.."

# Guard: the cd above must have landed at the repository root. When it
# did not (symlinked or copied script, exotic $0), every later step
# would fail with a confusing Go error; fail fast and say why instead.
if ! grep -q '^module abs$' go.mod 2>/dev/null; then
	echo "$(basename "$0"): must run from the abs repository root (go.mod with 'module abs' not found in $(pwd))" >&2
	echo "$(basename "$0"): invoke as scripts/$(basename "$0") from the checkout root" >&2
	exit 2
fi

GO=${GO:-go}
VERSION=${VERSION:-$(git describe --tags --always --dirty 2>/dev/null || echo dev)}
COMMIT=${COMMIT:-$(git rev-parse HEAD 2>/dev/null || echo unknown)}

TMP=$(mktemp -d)
SRV_PID=
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "obs-smoke: FAIL: $*" >&2
	if [ -s "$TMP/serve.log" ]; then
		echo "--- abs-serve log ---" >&2
		cat "$TMP/serve.log" >&2
	fi
	exit 1
}

echo "obs-smoke: building abs-serve ($VERSION @ $COMMIT)"
$GO build -ldflags "-X abs/internal/telemetry.version=$VERSION -X abs/internal/telemetry.commit=$COMMIT" \
	-o "$TMP/abs-serve" ./cmd/abs-serve

"$TMP/abs-serve" -addr 127.0.0.1:0 -gpus 1 -sms 1 >"$TMP/serve.log" 2>&1 &
SRV_PID=$!

# The service binds an ephemeral port; read it off the listen line.
BASE=
i=0
while [ $i -lt 50 ]; do
	BASE=$(sed -n 's#.*listening on http://\([^/]*\)/v1/jobs.*#\1#p' "$TMP/serve.log" | head -1)
	[ -n "$BASE" ] && break
	kill -0 "$SRV_PID" 2>/dev/null || fail "abs-serve exited before listening"
	sleep 0.2
	i=$((i + 1))
done
[ -n "$BASE" ] || fail "no listen address after 10s"
echo "obs-smoke: abs-serve on $BASE"

# One quick job, then wait for it to settle.
SUBMIT=$(curl -sf -X POST "http://$BASE/v1/jobs" \
	-d '{"random": {"n": 32, "seed": 7}, "max_flips": 200000, "name": "obs-smoke"}') ||
	fail "job submit"
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":[[:space:]]*"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "submit reply has no job id: $SUBMIT"

STATE=
i=0
while [ $i -lt 150 ]; do
	STATE=$(curl -sf "http://$BASE/v1/jobs/$ID" | sed -n 's/.*"state":[[:space:]]*"\([^"]*\)".*/\1/p')
	[ "$STATE" = done ] && break
	[ "$STATE" = failed ] && fail "job failed"
	sleep 0.2
	i=$((i + 1))
done
[ "$STATE" = done ] || fail "job still '$STATE' after 30s"
echo "obs-smoke: job $ID done"

# The metrics surface: build identity and native histograms.
curl -sf "http://$BASE/metrics" >"$TMP/metrics.prom" || fail "/metrics scrape"
grep -q '^abs_build_info{version=' "$TMP/metrics.prom" || fail "/metrics missing abs_build_info"
grep -q "^abs_build_info{version=\"$VERSION" "$TMP/metrics.prom" ||
	fail "abs_build_info does not carry the stamped version $VERSION"
grep -q '^abs_uptime_seconds ' "$TMP/metrics.prom" || fail "/metrics missing abs_uptime_seconds"
grep -q '^abs_serve_stage_seconds_bucket{' "$TMP/metrics.prom" ||
	fail "/metrics missing abs_serve_stage_seconds_bucket series"
grep -q 'le="+Inf"' "$TMP/metrics.prom" || fail "histogram export missing the +Inf bucket"
echo "obs-smoke: metrics ok ($(grep -c '^abs_' "$TMP/metrics.prom") abs_* samples)"

# The trace surface: NDJSON and Chrome formats.
curl -sf "http://$BASE/v1/jobs/$ID/trace" >"$TMP/trace.ndjson" || fail "trace fetch"
curl -sf "http://$BASE/v1/jobs/$ID/trace?format=chrome" >"$TMP/trace.json" || fail "chrome trace fetch"
[ -s "$TMP/trace.ndjson" ] || fail "empty NDJSON trace"
if command -v python3 >/dev/null 2>&1; then
	python3 - "$TMP/trace.ndjson" "$TMP/trace.json" <<'PY' || fail "trace validation"
import json, sys

spans, events, names = 0, 0, set()
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    rec = json.loads(line)
    if "span" in rec:
        spans += 1
        names.add(rec["span"].get("name"))
    elif "event" in rec:
        events += 1
    else:
        sys.exit("NDJSON line is neither span nor event: " + line)
for want in ("job", "job.queue", "job.run"):
    if want not in names:
        sys.exit("trace is missing the %r lifecycle span (got %s)" % (want, sorted(names)))

chrome = json.load(open(sys.argv[2]))
if not isinstance(chrome, list) or not chrome:
    sys.exit("chrome trace is not a non-empty JSON array")
slices = {r.get("name") for r in chrome if r.get("ph") == "X"}
for want in ("job", "job.queue", "job.run"):
    if want not in slices:
        sys.exit("chrome trace is missing the %r slice" % want)
print("obs-smoke: trace ok (%d spans, %d events, %d chrome records)" % (spans, events, len(chrome)))
PY
else
	echo "obs-smoke: python3 not found, grep-level trace checks only" >&2
	grep -q '"span"' "$TMP/trace.ndjson" || fail "NDJSON trace has no span lines"
	grep -q '"name":"job.run"' "$TMP/trace.ndjson" || fail "NDJSON trace missing job.run span"
	grep -q '"name":"job.run"' "$TMP/trace.json" || fail "chrome trace missing job.run slice"
fi

kill "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
echo "obs-smoke: PASS"
