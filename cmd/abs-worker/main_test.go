package main

import (
	"context"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"abs/internal/cluster"
	"abs/internal/randqubo"
)

// TestRunLifecycle boots the whole binary path — flags → transport →
// worker — against a real coordinator over loopback HTTP and lets the
// coordinator's flip budget end the run.
func TestRunLifecycle(t *testing.T) {
	p := randqubo.Generate(48, 5)
	coord, err := cluster.NewCoordinator(p, cluster.CoordinatorConfig{
		Seed:     5,
		MaxFlips: 20_000,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()
	srv := httptest.NewServer(cluster.NewHTTPHandler(coord))
	defer srv.Close()

	out, err := os.CreateTemp(t.TempDir(), "abs-worker-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	cfg := config{
		coordinator: srv.URL,
		id:          "cli-worker",
		devices:     1,
		sms:         1,
		exchange:    25 * time.Millisecond,
		publishK:    8,
		maxTime:     2 * time.Minute,
		addr:        "127.0.0.1:0",
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := run(ctx, cfg, out); err != nil {
		t.Fatalf("run: %v", err)
	}

	b, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	output := string(b)
	if !strings.Contains(output, "cli-worker done (coordinator done: true") {
		t.Errorf("worker did not report a coordinator-driven completion:\n%s", output)
	}
	if !strings.Contains(output, "local best") {
		t.Errorf("worker did not report a local result:\n%s", output)
	}
	if st := coord.Status(); !st.BestKnown {
		t.Error("worker run left the coordinator pool empty")
	}
}

func TestRunRequiresCoordinator(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "abs-worker-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run(context.Background(), config{}, out); err == nil {
		t.Fatal("run accepted a config with no coordinator address")
	}
}
