// Command abs-worker runs one cluster worker node: a full local ABS
// engine (its own pool, simulated devices and supervisor) that joins a
// coordinator started with `abs-serve -coordinator`, leases target
// solutions from the shared cross-node pool and publishes its best
// local solutions back.
//
// Usage:
//
//	abs-worker -coordinator http://host:8080 [-id worker-a]
//	           [-devices 1] [-sms 2] [-exchange 200ms] [-publish-k 8]
//	           [-backend auto|straight|sb|tabu|race]
//	           [-diversity radius=8,floor=0.1|off]
//	           [-addr :9090] [-metrics-addr :9091] [-trace-out run.jsonl]
//
// The worker needs nothing but the coordinator's address — the
// instance itself arrives in the registration grant. A worker that
// loses its coordinator keeps searching locally and re-registers under
// jittered exponential backoff; one that is killed simply stops
// heartbeating, and the coordinator redistributes its leases.
//
// When -addr is set, the worker serves /healthz (liveness), /readyz
// (readiness: registered and devices attached) and the telemetry plane
// (/metrics, /trace) on it. -metrics-addr and -trace-out are the flag
// surface shared with abs-solve: a dedicated telemetry listener and a
// JSONL stream of every lifecycle event (RPC errors, injected faults,
// engine publications), including the worker's spans in the
// coordinator's stitched run trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abs/internal/backendflag"
	"abs/internal/cluster"
	"abs/internal/core"
	"abs/internal/diversityflag"
	"abs/internal/gpusim"
	"abs/internal/health"
	"abs/internal/obsflags"
	"abs/internal/telemetry"
)

type config struct {
	coordinator string
	id          string
	devices     int
	sms         int
	exchange    time.Duration
	publishK    int
	maxTime     time.Duration
	storage     string
	backend     *backendflag.Value
	diversity   *diversityflag.Value
	addr        string
	obs         obsflags.Config
}

func main() {
	var cfg config
	flag.StringVar(&cfg.coordinator, "coordinator", "", "coordinator base URL (required), e.g. http://host:8080")
	flag.StringVar(&cfg.id, "id", "", "stable worker identity for re-registration (default: coordinator-assigned)")
	flag.IntVar(&cfg.devices, "devices", 1, "simulated devices this worker contributes")
	flag.IntVar(&cfg.sms, "sms", 2, "SMs per simulated device (0 = full RTX 2080 Ti)")
	flag.DurationVar(&cfg.exchange, "exchange", 200*time.Millisecond, "publish/lease exchange cadence")
	flag.IntVar(&cfg.publishK, "publish-k", 8, "best local solutions shipped per exchange")
	flag.DurationVar(&cfg.maxTime, "max-time", 24*time.Hour, "local backstop budget for an orphaned worker")
	flag.StringVar(&cfg.storage, "storage", "auto", "engine representation: auto|dense|sparse (auto defers to the coordinator's grant, then density)")
	cfg.backend = backendflag.Register("auto defers to the coordinator's grant, then straight")
	cfg.diversity = diversityflag.Register("unset defers to the coordinator's grant, then defaults; 'off' refuses the grant")
	flag.StringVar(&cfg.addr, "addr", "", "health/metrics listen address (empty = no listener)")
	cfg.obs.Register(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abs-worker:", err)
		// Exit 2 distinguishes a permanent failure (rejected
		// registration, corrupt grant — restarting won't help, an
		// operator must look) from transient ones; process supervisors
		// can key restart policy off it.
		if cluster.Permanent(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run drives one worker lifecycle; split from main so tests can run a
// whole worker in-process.
func run(ctx context.Context, cfg config, out *os.File) error {
	if cfg.coordinator == "" {
		return fmt.Errorf("no coordinator given (-coordinator http://host:8080)")
	}
	var device gpusim.DeviceSpec
	if cfg.sms == 0 {
		device = gpusim.TuringRTX2080Ti()
	} else {
		device = gpusim.ScaledCPU(cfg.sms)
	}
	storage, err := core.ParseStorage(cfg.storage)
	if err != nil {
		return err
	}
	// The worker's registry and tracer always exist — the -addr health
	// listener re-exposes them — and the shared -metrics-addr /
	// -trace-out plane adds a dedicated endpoint and a JSONL sink on
	// top when asked.
	cfg.obs.AlwaysOn = true
	cfg.obs.Ring = 1 << 12
	obs, err := cfg.obs.Open()
	if err != nil {
		return err
	}
	defer obs.Close()
	reg, tr := obs.Registry, obs.Tracer
	if addr := obs.Addr(); addr != "" {
		fmt.Fprintf(out, "abs-worker: telemetry on http://%s/metrics\n", addr)
	}
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Transport:   cluster.NewHTTPTransport(cfg.coordinator, nil),
		WorkerID:    cfg.id,
		Devices:     cfg.devices,
		Device:      device,
		Exchange:    cfg.exchange,
		PublishK:    cfg.publishK,
		MaxDuration: cfg.maxTime,
		Storage:     storage,
		Backend:     cfg.backend.Backend(),
		Diversity:   cfg.diversity.Raw(),
		Registry:    reg,
		Tracer:      tr,
	})
	if err != nil {
		return err
	}

	if cfg.addr != "" {
		mux := http.NewServeMux()
		health.Register(mux, w.Ready)
		mux.Handle("/", telemetry.NewHandler(reg, tr))
		ln, err := net.Listen("tcp", cfg.addr)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(out, "abs-worker: health/metrics on http://%s\n", ln.Addr())
	}

	fmt.Fprintf(out, "abs-worker: joining %s with %d simulated device(s)\n", cfg.coordinator, cfg.devices)
	report, err := w.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "abs-worker: %s done (coordinator done: %v, %d exchanges, %d heartbeats, %d reconnects)\n",
		report.WorkerID, report.CoordinatorDone, report.Exchanges, report.Heartbeats, report.Reconnects)
	if res := report.Result; res != nil {
		fmt.Fprintf(out, "abs-worker: local best %d after %d flips in %.1fs\n",
			res.BestEnergy, res.Flips, res.Elapsed.Seconds())
	}
	return nil
}
