package main

import (
	"context"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestRunLifecycle boots the whole binary path — flags → service →
// listener — on an ephemeral port, hits the API once, and shuts down
// via context cancellation the way SIGINT does.
func TestRunLifecycle(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "abs-serve-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	cfg := config{
		addr:        "127.0.0.1:0",
		gpus:        1,
		sms:         1,
		queueCap:    4,
		retain:      8,
		defaultTime: time.Second,
		maxTime:     time.Minute,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, out) }()

	// The bound address appears in the startup banner.
	addrRe := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)/v1/jobs`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && addr == "" {
		b, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		if m := addrRe.FindStringSubmatch(string(b)); m != nil {
			addr = m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		cancel()
		t.Fatal("server never printed its address")
	}

	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json",
		strings.NewReader(`{"random": {"n": 32}, "time": "50ms"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit over the binary's listener: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not shut down after cancellation")
	}
}
