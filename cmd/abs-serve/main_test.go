package main

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"abs/internal/cluster"
	"abs/internal/gpusim"
)

// TestRunLifecycle boots the whole binary path — flags → service →
// listener — on an ephemeral port, hits the API once, and shuts down
// via context cancellation the way SIGINT does.
func TestRunLifecycle(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "abs-serve-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	cfg := config{
		addr:        "127.0.0.1:0",
		gpus:        1,
		sms:         1,
		queueCap:    4,
		retain:      8,
		defaultTime: time.Second,
		maxTime:     time.Minute,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, out) }()

	// The bound address appears in the startup banner.
	addrRe := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)/v1/jobs`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && addr == "" {
		b, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		if m := addrRe.FindStringSubmatch(string(b)); m != nil {
			addr = m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		cancel()
		t.Fatal("server never printed its address")
	}

	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json",
		strings.NewReader(`{"random": {"n": 32}, "time": "50ms"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit over the binary's listener: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not shut down after cancellation")
	}
}

// TestCoordinatorModeLifecycle boots abs-serve -coordinator on an
// ephemeral port, joins it with a real in-process cluster worker, and
// lets the flip budget end the run: the server must return on its own
// (after the linger window) without ctx cancellation.
func TestCoordinatorModeLifecycle(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "abs-serve-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	cfg := config{
		addr:        "127.0.0.1:0",
		coordinator: true,
		randomN:     48,
		seed:        3,
		maxFlips:    20_000,
		linger:      500 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, out) }()

	addrRe := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)/v1/cluster`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && addr == "" {
		b, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		if m := addrRe.FindStringSubmatch(string(b)); m != nil {
			addr = m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		cancel()
		t.Fatal("coordinator never printed its address")
	}

	if resp, err := http.Get("http://" + addr + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %v, want 200", resp, err)
	} else {
		resp.Body.Close()
	}

	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Transport: cluster.NewHTTPTransport("http://"+addr, nil),
		Device:    gpusim.ScaledCPU(1),
		Exchange:  25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	if _, err := w.Run(ctx); err != nil {
		t.Fatalf("worker Run: %v", err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator run returned %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("coordinator did not exit on its own after the run finished")
	}
	b, _ := os.ReadFile(out.Name())
	if !strings.Contains(string(b), "best energy") {
		t.Errorf("coordinator exited without a run summary:\n%s", string(b))
	}
}

// TestRunRestartServesOldResults is the binary-level kill/restart
// walkthrough from the README: run abs-serve with -store, finish a job,
// kill the process, start a new one over the same directory, and the
// old job's result is still there — same ID, same answer, no 404.
func TestRunRestartServesOldResults(t *testing.T) {
	storeDir := t.TempDir()
	baseCfg := config{
		addr:        "127.0.0.1:0",
		gpus:        1,
		sms:         1,
		queueCap:    4,
		retain:      8,
		defaultTime: time.Second,
		maxTime:     time.Minute,
		storeDir:    storeDir,
	}
	addrRe := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)/v1/jobs`)

	boot := func() (addr string, cancel context.CancelFunc, done chan error) {
		out, err := os.CreateTemp(t.TempDir(), "abs-serve-out")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { out.Close() })
		ctx, cancel := context.WithCancel(context.Background())
		done = make(chan error, 1)
		go func() { done <- run(ctx, baseCfg, out) }()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) && addr == "" {
			b, _ := os.ReadFile(out.Name())
			if m := addrRe.FindStringSubmatch(string(b)); m != nil {
				addr = m[1]
			}
			time.Sleep(5 * time.Millisecond)
		}
		if addr == "" {
			cancel()
			t.Fatal("server never printed its address")
		}
		return addr, cancel, done
	}

	getJob := func(addr, id string) (int, jobDoc) {
		resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc jobDoc
		json.NewDecoder(resp.Body).Decode(&doc)
		return resp.StatusCode, doc
	}

	// Incarnation 1: run one job to completion.
	addr1, cancel1, done1 := boot()
	resp, err := http.Post("http://"+addr1+"/v1/jobs", "application/json",
		strings.NewReader(`{"random": {"n": 32, "seed": 5}, "max_flips": 2000}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted jobDoc
	json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit = %d %+v", resp.StatusCode, submitted)
	}
	var before jobDoc
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, doc := getJob(addr1, submitted.ID); doc.State == "done" {
			before = doc
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if before.State != "done" || before.Result == nil {
		t.Fatalf("job never finished in incarnation 1: %+v", before)
	}
	cancel1()
	if err := <-done1; err != nil {
		t.Fatalf("incarnation 1 exited with %v", err)
	}

	// Incarnation 2 over the same -store directory.
	addr2, cancel2, done2 := boot()
	defer func() {
		cancel2()
		<-done2
	}()
	code, after := getJob(addr2, submitted.ID)
	if code != http.StatusOK {
		t.Fatalf("GET %s after restart = %d, want 200", submitted.ID, code)
	}
	if after.State != "done" || after.Result == nil {
		t.Fatalf("restored job = %+v, want done with a result", after)
	}
	if after.Result.BestEnergy != before.Result.BestEnergy {
		t.Errorf("restored best = %d, want %d", after.Result.BestEnergy, before.Result.BestEnergy)
	}
}

// jobDoc is the slice of the job API document the restart test reads.
type jobDoc struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Result *struct {
		BestEnergy int64  `json:"best_energy"`
		Solution   string `json:"solution"`
	} `json:"result"`
}

// TestLoadProblemValidation covers the instance-source dispatch.
func TestLoadProblemValidation(t *testing.T) {
	if _, err := loadProblem(config{coordinator: true}); err == nil {
		t.Error("loadProblem accepted a config with no source")
	}
	if _, err := loadProblem(config{file: "x.qubo", randomN: 8}); err == nil {
		t.Error("loadProblem accepted both -file and -random-n")
	}
	if p, err := loadProblem(config{randomN: 24, seed: 9}); err != nil || p.N() != 24 {
		t.Errorf("loadProblem(random 24) = %v, %v", p, err)
	}
}
