package main

import (
	"context"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"abs/internal/cluster"
	"abs/internal/gpusim"
)

// TestRunLifecycle boots the whole binary path — flags → service →
// listener — on an ephemeral port, hits the API once, and shuts down
// via context cancellation the way SIGINT does.
func TestRunLifecycle(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "abs-serve-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	cfg := config{
		addr:        "127.0.0.1:0",
		gpus:        1,
		sms:         1,
		queueCap:    4,
		retain:      8,
		defaultTime: time.Second,
		maxTime:     time.Minute,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, out) }()

	// The bound address appears in the startup banner.
	addrRe := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)/v1/jobs`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && addr == "" {
		b, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		if m := addrRe.FindStringSubmatch(string(b)); m != nil {
			addr = m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		cancel()
		t.Fatal("server never printed its address")
	}

	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json",
		strings.NewReader(`{"random": {"n": 32}, "time": "50ms"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit over the binary's listener: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not shut down after cancellation")
	}
}

// TestCoordinatorModeLifecycle boots abs-serve -coordinator on an
// ephemeral port, joins it with a real in-process cluster worker, and
// lets the flip budget end the run: the server must return on its own
// (after the linger window) without ctx cancellation.
func TestCoordinatorModeLifecycle(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "abs-serve-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	cfg := config{
		addr:        "127.0.0.1:0",
		coordinator: true,
		randomN:     48,
		seed:        3,
		maxFlips:    20_000,
		linger:      500 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, out) }()

	addrRe := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)/v1/cluster`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && addr == "" {
		b, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		if m := addrRe.FindStringSubmatch(string(b)); m != nil {
			addr = m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		cancel()
		t.Fatal("coordinator never printed its address")
	}

	if resp, err := http.Get("http://" + addr + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %v, want 200", resp, err)
	} else {
		resp.Body.Close()
	}

	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Transport: cluster.NewHTTPTransport("http://"+addr, nil),
		Device:    gpusim.ScaledCPU(1),
		Exchange:  25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	if _, err := w.Run(ctx); err != nil {
		t.Fatalf("worker Run: %v", err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator run returned %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("coordinator did not exit on its own after the run finished")
	}
	b, _ := os.ReadFile(out.Name())
	if !strings.Contains(string(b), "best energy") {
		t.Errorf("coordinator exited without a run summary:\n%s", string(b))
	}
}

// TestLoadProblemValidation covers the instance-source dispatch.
func TestLoadProblemValidation(t *testing.T) {
	if _, err := loadProblem(config{coordinator: true}); err == nil {
		t.Error("loadProblem accepted a config with no source")
	}
	if _, err := loadProblem(config{file: "x.qubo", randomN: 8}); err == nil {
		t.Error("loadProblem accepted both -file and -random-n")
	}
	if p, err := loadProblem(config{randomN: 24, seed: 9}); err != nil || p.N() != 24 {
		t.Errorf("loadProblem(random 24) = %v, %v", p, err)
	}
}
