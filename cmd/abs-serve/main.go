// Command abs-serve runs the Adaptive Bulk Search solver as a long-
// lived HTTP service: one simulated device fleet, many concurrent jobs
// scheduled onto it fair-share.
//
// Usage:
//
//	abs-serve [-addr :8080] [-gpus 2] [-sms 2] [-queue-cap 16]
//	          [-retain 64] [-default-time 10s] [-max-time 5m]
//	          [-store /var/lib/abs]
//
// With -store the service is crash-recoverable: every accepted job's
// spec and terminal result are journaled to the directory, and a
// restarted process answers the same job queries the old one would
// have — finished jobs keep their results, unfinished jobs re-queue
// under their original IDs. In coordinator mode -store (plus the
// -checkpoint cadence) periodically snapshots the pool and run status;
// a restart resumes the run and workers re-register on their own.
//
// API (JSON):
//
//	POST   /v1/jobs             submit a job; 202 on accept, 429 when
//	                            the queue is full (backpressure)
//	GET    /v1/jobs             list live and retained jobs
//	GET    /v1/jobs/{id}        status, plus the result once settled
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events NDJSON status stream until settled
//	GET    /healthz, /readyz    liveness and readiness probes
//
// A submission carries either an inline text-format QUBO ("problem")
// or a server-side generator spec ("random": {"n": 512, "seed": 7}),
// plus stop conditions: "time" (Go duration), "max_flips",
// "target_energy". "max_devices" caps the job's fair share of the
// fleet.
//
// Coordinator mode turns the process into a multi-node cluster head
// instead: it owns the authoritative GA pool for ONE instance and
// serves the worker lease/publish protocol (see internal/cluster and
// cmd/abs-worker) rather than the job API:
//
//	abs-serve -coordinator -random-n 512 -time 30s [-target -4000]
//	          [-lease-ttl 10s] [-lease-batch 32] [-linger 3s]
//	abs-serve -coordinator -file instance.qubo -target -4100 -time 5m
//
// The same listener exposes the telemetry plane in both modes:
// Prometheus text at /metrics, a JSON snapshot at /metrics.json, the
// recent lifecycle event ring at /trace and pprof under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abs/internal/backendflag"
	"abs/internal/cluster"
	"abs/internal/core"
	"abs/internal/diversityflag"
	"abs/internal/gpusim"
	"abs/internal/health"
	"abs/internal/qubo"
	"abs/internal/randqubo"
	"abs/internal/serve"
	"abs/internal/store"
	"abs/internal/telemetry"
)

type config struct {
	addr        string
	gpus, sms   int
	queueCap    int
	retain      int
	defaultTime time.Duration
	maxTime     time.Duration
	backend     *backendflag.Value
	diversity   *diversityflag.Value

	// Durability (both modes).
	storeDir   string
	checkpoint time.Duration

	// Coordinator mode.
	coordinator bool
	file        string
	randomN     int
	seed        uint64
	target      int64
	hasTarget   bool
	runTime     time.Duration
	maxFlips    uint64
	leaseTTL    time.Duration
	leaseBatch  int
	linger      time.Duration
	storage     string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.gpus, "gpus", 2, "fleet size (simulated devices)")
	flag.IntVar(&cfg.sms, "sms", 2, "SMs per simulated device (0 = full RTX 2080 Ti)")
	flag.IntVar(&cfg.queueCap, "queue-cap", 16, "max jobs waiting for a device before 429")
	flag.IntVar(&cfg.retain, "retain", 64, "settled jobs kept queryable")
	flag.DurationVar(&cfg.defaultTime, "default-time", 10*time.Second, "wall-clock budget for jobs that set no stop condition")
	flag.DurationVar(&cfg.maxTime, "max-time", 5*time.Minute, "hard cap on any job's wall-clock budget")
	flag.StringVar(&cfg.storeDir, "store", "", "directory for durable state; a restart recovers jobs (job mode) or the run checkpoint (coordinator mode)")
	flag.DurationVar(&cfg.checkpoint, "checkpoint", 0, "coordinator: checkpoint cadence when -store is set (default 2s)")

	flag.BoolVar(&cfg.coordinator, "coordinator", false, "run as a multi-node cluster coordinator instead of the job service")
	flag.StringVar(&cfg.file, "file", "", "coordinator: instance in the qubo text format")
	flag.IntVar(&cfg.randomN, "random-n", 0, "coordinator: generate a random dense instance of this size instead of -file")
	flag.Uint64Var(&cfg.seed, "seed", 1, "coordinator: seed for the pool, worker seeds and -random-n generation")
	flag.Int64Var(&cfg.target, "target", 0, "coordinator: stop once the pool's best energy is <= this")
	flag.DurationVar(&cfg.runTime, "time", 0, "coordinator: wall-clock budget for the run")
	flag.Uint64Var(&cfg.maxFlips, "max-flips", 0, "coordinator: stop after this many cluster-wide flips")
	flag.DurationVar(&cfg.leaseTTL, "lease-ttl", 0, "coordinator: lease TTL (default 10s)")
	flag.IntVar(&cfg.leaseBatch, "lease-batch", 0, "coordinator: targets granted per lease call (default 32)")
	flag.DurationVar(&cfg.linger, "linger", 3*time.Second, "coordinator: how long to keep serving after the run finishes so workers can flush")
	flag.StringVar(&cfg.storage, "storage", "auto", "coordinator: engine representation granted to workers (auto|dense|sparse)")
	cfg.backend = backendflag.Register("job mode: default for jobs that name none; coordinator mode: granted to workers")
	cfg.diversity = diversityflag.Register("job mode: default for jobs that name no spec; coordinator mode: granted to workers")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "target" {
			cfg.hasTarget = true
		}
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abs-serve:", err)
		os.Exit(1)
	}
}

// run starts the service and serves until ctx is cancelled; split from
// main so tests can drive a whole server lifecycle in-process.
func run(ctx context.Context, cfg config, out *os.File) error {
	if cfg.coordinator {
		return runCoordinator(ctx, cfg, out)
	}
	svc, reg, tr, err := newService(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	// A crash must leave a postmortem next to the job journal: dump the
	// flight recorder (recent spans + events + metrics snapshot) through
	// the store before re-panicking. No-op without -store.
	defer func() {
		if r := recover(); r != nil {
			svc.DumpFlight(fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           serve.NewHTTPHandler(svc, reg, tr),
		ReadHeaderTimeout: 5 * time.Second,
	}
	spec, size := svc.Fleet()
	fmt.Fprintf(out, "abs-serve: fleet %d × %s\n", size, spec.Name)
	fmt.Fprintf(out, "abs-serve: listening on http://%s/v1/jobs (metrics at /metrics)\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "abs-serve: shutting down")
		svc.DumpFlight("sigterm: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// runCoordinator is the cluster-head lifecycle: build the coordinator,
// serve the worker protocol until a stop condition fires (or ctx dies),
// linger so workers can flush their final publications, report.
func runCoordinator(ctx context.Context, cfg config, out *os.File) error {
	p, err := loadProblem(cfg)
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(1 << 14)
	telemetry.StampBuildInfo(reg)
	storage, err := core.ParseStorage(cfg.storage)
	if err != nil {
		return err
	}
	ccfg := cluster.CoordinatorConfig{
		Seed:        cfg.seed,
		MaxDuration: cfg.runTime,
		MaxFlips:    cfg.maxFlips,
		LeaseTTL:    cfg.leaseTTL,
		LeaseBatch:  cfg.leaseBatch,
		Storage:     storage,
		Backend:     cfg.backend.Backend(),
		Diversity:   cfg.diversity.Raw(),
		Registry:    reg,
		Tracer:      tr,
		Checkpoint:  cfg.checkpoint,
	}
	if cfg.hasTarget {
		t := cfg.target
		ccfg.TargetEnergy = &t
	}
	var coord *cluster.Coordinator
	if cfg.storeDir != "" {
		st, err := store.Open(cfg.storeDir)
		if err != nil {
			return err
		}
		defer st.Close()
		ccfg.Store = st
		var resumed bool
		coord, resumed, err = cluster.RestoreCoordinator(p, ccfg)
		if err != nil {
			return err
		}
		if resumed {
			rst := coord.Status()
			fmt.Fprintf(out, "abs-serve: resumed from checkpoint (best known: %v, %d flips, %v elapsed)\n",
				rst.BestKnown, rst.Flips, rst.Elapsed.Round(time.Millisecond))
		}
	} else {
		coord, err = cluster.NewCoordinator(p, ccfg)
		if err != nil {
			return err
		}
	}
	defer coord.Close()
	// Crash and kill postmortems: the flight recorder dumps through the
	// coordinator's store (no-op without one) so a dead coordinator
	// leaves its recent spans, events and metrics next to its last
	// checkpoint.
	defer func() {
		if r := recover(); r != nil {
			coord.DumpFlight(fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/v1/cluster/", cluster.NewHTTPHandler(coord))
	health.Register(mux, func() bool {
		select {
		case <-coord.Done():
			return false
		default:
			return true
		}
	})
	mux.Handle("/", telemetry.NewHandler(reg, tr))

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(out, "abs-serve: coordinator for %d-bit instance on http://%s/v1/cluster (metrics at /metrics)\n",
		p.N(), ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-coord.Done():
		// Keep serving while workers notice Done and flush.
		fmt.Fprintf(out, "abs-serve: run finished, lingering %v for worker flushes\n", cfg.linger)
		select {
		case <-time.After(cfg.linger):
		case <-ctx.Done():
		}
	case <-ctx.Done():
		coord.DumpFlight("sigterm: shutting down")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	st := coord.Status()
	if st.BestKnown {
		fmt.Fprintf(out, "abs-serve: best energy %d after %d cluster flips (%d workers, target reached: %v)\n",
			st.BestEnergy, st.Flips, st.Workers, st.ReachedTarget)
	} else {
		fmt.Fprintln(out, "abs-serve: no worker ever published")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	return nil
}

// loadProblem resolves the coordinator's instance source.
func loadProblem(cfg config) (*qubo.Problem, error) {
	switch {
	case cfg.file != "" && cfg.randomN > 0:
		return nil, fmt.Errorf("set exactly one of -file and -random-n")
	case cfg.file != "":
		f, err := os.Open(cfg.file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return qubo.ReadText(f)
	case cfg.randomN > 0:
		seed := cfg.seed
		if seed == 0 {
			seed = 1
		}
		return randqubo.Generate(cfg.randomN, seed), nil
	default:
		return nil, fmt.Errorf("coordinator mode needs a problem: -file or -random-n")
	}
}

// newService builds the Service plus its telemetry plane from flags.
func newService(cfg config) (*serve.Service, *telemetry.Registry, *telemetry.Tracer, error) {
	defaults := core.DefaultOptions()
	defaults.MaxDuration = cfg.defaultTime
	defaults.Backend = cfg.backend.Backend()
	defaults.Diversity = cfg.diversity.Spec()

	var device gpusim.DeviceSpec
	if cfg.sms == 0 {
		device = gpusim.TuringRTX2080Ti()
	} else {
		device = gpusim.ScaledCPU(cfg.sms)
	}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(1 << 14)
	telemetry.StampBuildInfo(reg)
	scfg := serve.Config{
		Device:         device,
		NumDevices:     cfg.gpus,
		Defaults:       defaults,
		QueueCap:       cfg.queueCap,
		RetainResults:  cfg.retain,
		MaxJobDuration: cfg.maxTime,
		Registry:       reg,
		Tracer:         tr,
	}
	if cfg.storeDir != "" {
		st, err := store.Open(cfg.storeDir)
		if err != nil {
			return nil, nil, nil, err
		}
		scfg.Store = st
	}
	svc, err := serve.New(scfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return svc, reg, tr, nil
}
