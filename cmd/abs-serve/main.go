// Command abs-serve runs the Adaptive Bulk Search solver as a long-
// lived HTTP service: one simulated device fleet, many concurrent jobs
// scheduled onto it fair-share.
//
// Usage:
//
//	abs-serve [-addr :8080] [-gpus 2] [-sms 2] [-queue-cap 16]
//	          [-retain 64] [-default-time 10s] [-max-time 5m]
//
// API (JSON):
//
//	POST   /v1/jobs             submit a job; 202 on accept, 429 when
//	                            the queue is full (backpressure)
//	GET    /v1/jobs             list live and retained jobs
//	GET    /v1/jobs/{id}        status, plus the result once settled
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events NDJSON status stream until settled
//
// A submission carries either an inline text-format QUBO ("problem")
// or a server-side generator spec ("random": {"n": 512, "seed": 7}),
// plus stop conditions: "time" (Go duration), "max_flips",
// "target_energy". "max_devices" caps the job's fair share of the
// fleet.
//
// The same listener exposes the telemetry plane: Prometheus text at
// /metrics, a JSON snapshot at /metrics.json, the recent lifecycle
// event ring at /trace and pprof under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abs/internal/core"
	"abs/internal/gpusim"
	"abs/internal/serve"
	"abs/internal/telemetry"
)

type config struct {
	addr        string
	gpus, sms   int
	queueCap    int
	retain      int
	defaultTime time.Duration
	maxTime     time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.gpus, "gpus", 2, "fleet size (simulated devices)")
	flag.IntVar(&cfg.sms, "sms", 2, "SMs per simulated device (0 = full RTX 2080 Ti)")
	flag.IntVar(&cfg.queueCap, "queue-cap", 16, "max jobs waiting for a device before 429")
	flag.IntVar(&cfg.retain, "retain", 64, "settled jobs kept queryable")
	flag.DurationVar(&cfg.defaultTime, "default-time", 10*time.Second, "wall-clock budget for jobs that set no stop condition")
	flag.DurationVar(&cfg.maxTime, "max-time", 5*time.Minute, "hard cap on any job's wall-clock budget")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abs-serve:", err)
		os.Exit(1)
	}
}

// run starts the service and serves until ctx is cancelled; split from
// main so tests can drive a whole server lifecycle in-process.
func run(ctx context.Context, cfg config, out *os.File) error {
	svc, reg, tr, err := newService(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           serve.NewHTTPHandler(svc, reg, tr),
		ReadHeaderTimeout: 5 * time.Second,
	}
	spec, size := svc.Fleet()
	fmt.Fprintf(out, "abs-serve: fleet %d × %s\n", size, spec.Name)
	fmt.Fprintf(out, "abs-serve: listening on http://%s/v1/jobs (metrics at /metrics)\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "abs-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// newService builds the Service plus its telemetry plane from flags.
func newService(cfg config) (*serve.Service, *telemetry.Registry, *telemetry.Tracer, error) {
	defaults := core.DefaultOptions()
	defaults.MaxDuration = cfg.defaultTime

	var device gpusim.DeviceSpec
	if cfg.sms == 0 {
		device = gpusim.TuringRTX2080Ti()
	} else {
		device = gpusim.ScaledCPU(cfg.sms)
	}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(1 << 14)
	svc, err := serve.New(serve.Config{
		Device:         device,
		NumDevices:     cfg.gpus,
		Defaults:       defaults,
		QueueCap:       cfg.queueCap,
		RetainResults:  cfg.retain,
		MaxJobDuration: cfg.maxTime,
		Registry:       reg,
		Tracer:         tr,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return svc, reg, tr, nil
}
