// Command qubogen generates benchmark instances in the three families
// of the paper's evaluation and writes them to disk, so experiments can
// run on files like the paper ran on downloads.
//
// Usage:
//
//	qubogen -kind random   -n 1024 [-seed 7] -out rand1k.qubo
//	qubogen -kind gset     -n 800 -m 19176 [-weights +1|pm1] -out g1.gset
//	qubogen -kind torus    -rows 40 -cols 50 [-weights pm1] -out g35.gset
//	qubogen -kind tsp      -n 52 [-seed 7] -out berlin.tsp
//	qubogen -kind gset-paper -name G1 -out g1.gset
//
// random emits the text QUBO format (use -binary for the compact
// binary form); gset/torus emit the G-set graph format; tsp emits a
// TSPLIB FULL_MATRIX file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"abs/internal/maxcut"
	"abs/internal/qubo"
	"abs/internal/randqubo"
	"abs/internal/tsp"
)

// genSpec carries the parsed generation request.
type genSpec struct {
	kind       string
	n, m       int
	rows, cols int
	weights    maxcut.WeightKind
	name       string
	seed       uint64
	binary     bool
}

// emit generates the requested instance and writes it to w.
func emit(spec genSpec, w io.Writer) error {
	switch spec.kind {
	case "random":
		if spec.n <= 0 {
			return fmt.Errorf("random: need -n")
		}
		p := randqubo.Generate(spec.n, spec.seed)
		if spec.binary {
			return qubo.WriteBinary(w, p)
		}
		return qubo.WriteText(w, p)
	case "gset":
		if spec.n <= 0 || spec.m <= 0 {
			return fmt.Errorf("gset: need -n and -m")
		}
		g, err := maxcut.GenerateRandom(spec.n, spec.m, spec.weights, spec.seed)
		if err != nil {
			return err
		}
		return maxcut.WriteGSet(w, g)
	case "torus":
		if spec.rows < 2 || spec.cols < 2 {
			return fmt.Errorf("torus: need -rows and -cols ≥ 2")
		}
		g, err := maxcut.GenerateToroidal(spec.rows, spec.cols, spec.weights, spec.seed)
		if err != nil {
			return err
		}
		return maxcut.WriteGSet(w, g)
	case "tsp":
		if spec.n < 3 {
			return fmt.Errorf("tsp: need -n ≥ 3")
		}
		return tsp.WriteTSPLIB(w, tsp.RandomEuclidean(spec.n, spec.seed))
	case "gset-paper":
		for _, f := range maxcut.PaperGSet() {
			if f.Name == spec.name {
				g, err := f.Generate()
				if err != nil {
					return err
				}
				return maxcut.WriteGSet(w, g)
			}
		}
		return fmt.Errorf("gset-paper: unknown name %q", spec.name)
	default:
		return fmt.Errorf("unknown kind %q", spec.kind)
	}
}

func main() {
	var (
		kind    = flag.String("kind", "", "random | gset | torus | tsp | gset-paper")
		n       = flag.Int("n", 0, "size: bits (random), vertices (gset), cities (tsp)")
		m       = flag.Int("m", 0, "edge count (gset)")
		rows    = flag.Int("rows", 0, "torus rows")
		cols    = flag.Int("cols", 0, "torus cols")
		weights = flag.String("weights", "+1", "edge weights: +1 or pm1")
		name    = flag.String("name", "", "paper instance name (gset-paper): G1, G6, G22, G27, G35, G39, G55, G70")
		seed    = flag.Uint64("seed", 1, "random seed")
		binary  = flag.Bool("binary", false, "write the binary QUBO format (random only)")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	wk := maxcut.WeightsPlusOne
	if *weights == "pm1" {
		wk = maxcut.WeightsPlusMinusOne
	}
	spec := genSpec{
		kind: *kind, n: *n, m: *m, rows: *rows, cols: *cols,
		weights: wk, name: *name, seed: *seed, binary: *binary,
	}
	if spec.kind == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := emit(spec, w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubogen:", err)
	os.Exit(1)
}
