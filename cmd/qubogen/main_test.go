package main

import (
	"strings"
	"testing"

	"abs/internal/maxcut"
	"abs/internal/qubo"
	"abs/internal/tsp"
)

func TestEmitRandomTextParsesBack(t *testing.T) {
	var sb strings.Builder
	if err := emit(genSpec{kind: "random", n: 40, seed: 3}, &sb); err != nil {
		t.Fatal(err)
	}
	p, err := qubo.ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 40 {
		t.Errorf("n = %d", p.N())
	}
}

func TestEmitRandomBinaryParsesBack(t *testing.T) {
	var sb strings.Builder
	if err := emit(genSpec{kind: "random", n: 24, seed: 3, binary: true}, &sb); err != nil {
		t.Fatal(err)
	}
	p, err := qubo.ReadBinary(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 24 {
		t.Errorf("n = %d", p.N())
	}
}

func TestEmitGSetParsesBack(t *testing.T) {
	var sb strings.Builder
	if err := emit(genSpec{kind: "gset", n: 30, m: 60, weights: maxcut.WeightsPlusMinusOne, seed: 4}, &sb); err != nil {
		t.Fatal(err)
	}
	g, err := maxcut.ReadGSet(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 30 || g.M() != 60 {
		t.Errorf("graph %d/%d", g.N(), g.M())
	}
}

func TestEmitTorusParsesBack(t *testing.T) {
	var sb strings.Builder
	if err := emit(genSpec{kind: "torus", rows: 4, cols: 5, weights: maxcut.WeightsPlusOne, seed: 5}, &sb); err != nil {
		t.Fatal(err)
	}
	g, err := maxcut.ReadGSet(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 40 {
		t.Errorf("torus %d/%d", g.N(), g.M())
	}
}

func TestEmitTSPParsesBack(t *testing.T) {
	var sb strings.Builder
	if err := emit(genSpec{kind: "tsp", n: 7, seed: 6}, &sb); err != nil {
		t.Fatal(err)
	}
	inst, err := tsp.ReadTSPLIB(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Cities() != 7 {
		t.Errorf("cities = %d", inst.Cities())
	}
}

func TestEmitGSetPaper(t *testing.T) {
	var sb strings.Builder
	if err := emit(genSpec{kind: "gset-paper", name: "G1"}, &sb); err != nil {
		t.Fatal(err)
	}
	g, err := maxcut.ReadGSet(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 800 || g.M() != 19176 {
		t.Errorf("G1 family %d/%d", g.N(), g.M())
	}
}

func TestEmitErrors(t *testing.T) {
	var sb strings.Builder
	cases := []genSpec{
		{kind: "random"},
		{kind: "gset", n: 10},
		{kind: "torus", rows: 1, cols: 5},
		{kind: "tsp", n: 2},
		{kind: "gset-paper", name: "G999"},
		{kind: "bananas"},
	}
	for _, spec := range cases {
		if err := emit(spec, &sb); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}
