package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"abs/internal/ising"
	"abs/internal/maxcut"
	"abs/internal/qubo"
	"abs/internal/randqubo"
	"abs/internal/telemetry"
	"abs/internal/tsp"
)

func TestDetectFormat(t *testing.T) {
	cases := map[string]string{
		"a.qubo":  "qubo",
		"a.txt":   "qubo",
		"a.qbin":  "qubobin",
		"a.gset":  "gset",
		"a.mc":    "gset",
		"a.tsp":   "tsplib",
		"a.ising": "ising",
		"a":       "qubo",
	}
	for file, want := range cases {
		if got := detectFormat(file, ""); got != want {
			t.Errorf("detectFormat(%q) = %q, want %q", file, got, want)
		}
	}
	if detectFormat("a.tsp", "qubo") != "qubo" {
		t.Error("explicit format not honoured")
	}
}

func writeFile(t *testing.T, name string, write func(*os.File) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// testConfig builds the default single-GPU, single-SM test invocation;
// mutate adjusts individual fields when non-nil.
func testConfig(file string, budget time.Duration, mutate func(*config)) config {
	cfg := config{file: file, budget: budget, gpus: 1, sms: 1, seed: 1}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

func TestRunEndToEndQUBO(t *testing.T) {
	p := randqubo.Generate(48, 1)
	path := writeFile(t, "t.qubo", func(f *os.File) error { return qubo.WriteText(f, p) })
	if err := run(context.Background(), testConfig(path, 80*time.Millisecond, func(c *config) { c.showSolution = true })); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEndBinary(t *testing.T) {
	p := randqubo.Generate(32, 2)
	path := writeFile(t, "t.qbin", func(f *os.File) error { return qubo.WriteBinary(f, p) })
	if err := run(context.Background(), testConfig(path, 50*time.Millisecond, nil)); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEndGSet(t *testing.T) {
	g, err := maxcut.GenerateRandom(40, 120, maxcut.WeightsPlusMinusOne, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := writeFile(t, "t.gset", func(f *os.File) error { return maxcut.WriteGSet(f, g) })
	if err := run(context.Background(), testConfig(path, 80*time.Millisecond, nil)); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEndTSP(t *testing.T) {
	inst := tsp.RandomEuclidean(6, 4)
	path := writeFile(t, "t.tsp", func(f *os.File) error { return tsp.WriteTSPLIB(f, inst) })
	if err := run(context.Background(), testConfig(path, 150*time.Millisecond, func(c *config) { c.verbose = true })); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEndIsing(t *testing.T) {
	m := ising.New(12)
	m.SetJ(0, 1, 3)
	m.SetJ(2, 5, -4)
	m.SetH(7, 2)
	path := writeFile(t, "t.ising", func(f *os.File) error { return ising.Write(f, m) })
	if err := run(context.Background(), testConfig(path, 60*time.Millisecond, nil)); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTargetStop(t *testing.T) {
	p := randqubo.Generate(32, 5)
	path := writeFile(t, "t.qubo", func(f *os.File) error { return qubo.WriteText(f, p) })
	// Target of -1 is trivially reachable on a dense random instance.
	if err := run(context.Background(), testConfig(path, 5*time.Second, func(c *config) { c.target, c.hasTarget = -1, true })); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnreachedTargetIsUnfinished(t *testing.T) {
	p := randqubo.Generate(32, 9)
	path := writeFile(t, "u.qubo", func(f *os.File) error { return qubo.WriteText(f, p) })
	// An unreachable target with a tiny budget: the run must end by
	// deadline and report itself unfinished (CLI exit status 3).
	err := run(context.Background(), testConfig(path, 50*time.Millisecond, func(c *config) { c.target, c.hasTarget = math.MinInt64, true }))
	if !errors.Is(err, errUnfinished) {
		t.Errorf("missed target returned %v, want errUnfinished", err)
	}
}

func TestRunCancelledIsUnfinished(t *testing.T) {
	p := randqubo.Generate(32, 10)
	path := writeFile(t, "c.qubo", func(f *os.File) error { return qubo.WriteText(f, p) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, testConfig(path, 5*time.Second, nil))
	if !errors.Is(err, errUnfinished) {
		t.Errorf("cancelled run returned %v, want errUnfinished", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), testConfig(filepath.Join(t.TempDir(), "missing.qubo"), time.Second, nil)); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeFile(t, "bad.qubo", func(f *os.File) error {
		_, err := f.WriteString("not a qubo file\n")
		return err
	})
	if err := run(context.Background(), testConfig(bad, time.Second, nil)); err == nil {
		t.Error("malformed file accepted")
	}
	good := writeFile(t, "g.qubo", func(f *os.File) error {
		return qubo.WriteText(f, randqubo.Generate(16, 6))
	})
	if err := run(context.Background(), testConfig(good, time.Second, func(c *config) { c.format = "nonsense" })); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunWithPresolve(t *testing.T) {
	// An instance where persistency fixes variables: strongly negative
	// diagonals with weak couplings.
	p := qubo.New(20)
	for i := 0; i < 20; i++ {
		p.SetWeight(i, i, -50)
	}
	p.SetWeight(0, 1, 2)
	path := writeFile(t, "t.qubo", func(f *os.File) error { return qubo.WriteText(f, p) })
	if err := run(context.Background(), testConfig(path, 60*time.Millisecond, func(c *config) { c.presolve = true })); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithTelemetry drives the -metrics-addr and -trace-out wiring:
// the run must succeed and leave a non-empty JSONL trace whose every
// line decodes as a telemetry event.
func TestRunWithTelemetry(t *testing.T) {
	p := randqubo.Generate(48, 12)
	path := writeFile(t, "t.qubo", func(f *os.File) error { return qubo.WriteText(f, p) })
	tracePath := filepath.Join(t.TempDir(), "run.jsonl")
	cfg := testConfig(path, 120*time.Millisecond, func(c *config) {
		c.obs.MetricsAddr = "127.0.0.1:0"
		c.obs.TraceOut = tracePath
	})
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !telemetry.Enabled {
		return
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("trace file is empty")
	}
	for i, line := range lines {
		var e telemetry.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("trace line %d does not decode: %v", i, err)
		}
		if e.Kind == "" || e.Seq == 0 {
			t.Fatalf("trace line %d missing kind/seq: %s", i, line)
		}
	}
}
