// Command abs-solve runs the Adaptive Bulk Search solver on a problem
// file and prints the best solution found.
//
// Usage:
//
//	abs-solve -file problem.qubo [-format qubo|qubobin|gset|tsplib|ising]
//	          [-time 5s] [-target -12345 -use-target] [-gpus 1] [-sms 2]
//	          [-bits-per-thread 0] [-seed 1] [-storage auto|dense|sparse]
//	          [-backend auto|straight|sb|tabu|race]
//	          [-diversity radius=8,floor=0.1|off]
//	          [-solution] [-v] [-presolve]
//	          [-metrics-addr :9090] [-trace-out run.jsonl]
//
// The format defaults from the file extension: .qubo/.txt → qubo text
// (including qbsolv-style headers), .qbin → binary, .gset/.mc → G-set
// Max-Cut, .tsp → TSPLIB, .ising → h/J Ising. Max-Cut inputs report the
// cut value, TSP inputs decode and validate the tour, and Ising inputs
// report the Hamiltonian, in addition to the raw energy. -presolve
// applies persistency-based variable fixing before the search; -v
// streams progress to stderr.
//
// -metrics-addr serves live telemetry while the run is in flight:
// Prometheus text at /metrics, a JSON snapshot at /metrics.json, the
// recent event ring at /trace, pprof under /debug/pprof/ and expvar at
// /debug/vars. -trace-out streams every lifecycle event (target and
// solution publishes, ingest verdicts, respawns, retirements, pool
// admissions) as one JSON object per line.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"abs/internal/backendflag"
	"abs/internal/bitvec"
	"abs/internal/core"
	"abs/internal/diversityflag"
	"abs/internal/gpusim"
	"abs/internal/ising"
	"abs/internal/maxcut"
	"abs/internal/obsflags"
	"abs/internal/qubo"
	"abs/internal/tsp"
)

// config collects the flag surface of one invocation.
type config struct {
	file, format  string
	budget        time.Duration
	target        int64
	hasTarget     bool
	gpus, sms     int
	bitsPerThread int
	seed          uint64
	storage       string
	backend       *backendflag.Value
	diversity     *diversityflag.Value
	showSolution  bool
	verbose       bool
	presolve      bool
	trustDevices  bool
	grace         time.Duration
	obs           obsflags.Config
}

func main() {
	var cfg config
	flag.StringVar(&cfg.file, "file", "", "problem file (required)")
	flag.StringVar(&cfg.format, "format", "", "qubo|qubobin|gset|tsplib (default: by extension)")
	flag.DurationVar(&cfg.budget, "time", 5*time.Second, "wall-clock budget")
	flag.Int64Var(&cfg.target, "target", 0, "target energy (stops early when reached)")
	flag.BoolVar(&cfg.hasTarget, "use-target", false, "enable the -target stop condition")
	flag.IntVar(&cfg.gpus, "gpus", 1, "number of simulated GPUs")
	flag.IntVar(&cfg.sms, "sms", 2, "SMs per simulated GPU (0 = full RTX 2080 Ti)")
	flag.IntVar(&cfg.bitsPerThread, "bits-per-thread", 0, "bits per thread (0 = auto)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.StringVar(&cfg.storage, "storage", "auto", "engine representation: auto|dense|sparse")
	cfg.backend = backendflag.Register("")
	cfg.diversity = diversityflag.Register("")
	flag.BoolVar(&cfg.showSolution, "solution", false, "print the solution bit vector")
	flag.BoolVar(&cfg.verbose, "v", false, "print progress once per second")
	flag.BoolVar(&cfg.presolve, "presolve", false, "apply persistency-based variable fixing before solving")
	flag.BoolVar(&cfg.trustDevices, "trust-devices", false, "skip host-side publication validation (the paper's pure §3.1 protocol)")
	flag.DurationVar(&cfg.grace, "grace", 0, "supervisor grace period before a silent block is respawned (0 = default 2s)")
	cfg.obs.Register(flag.CommandLine)
	flag.Parse()
	if cfg.file == "" {
		flag.Usage()
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the solve context: the run shuts down
	// cleanly and the partial result is still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, cfg)
	switch {
	case errors.Is(err, errUnfinished):
		fmt.Fprintln(os.Stderr, "abs-solve:", err)
		os.Exit(3)
	case err != nil:
		fmt.Fprintln(os.Stderr, "abs-solve:", err)
		os.Exit(1)
	}
}

// errUnfinished marks a run that ended without doing what was asked:
// interrupted, or out of budget before reaching the requested target.
// main turns it into a distinct non-zero exit code so scripts can tell
// "searched and missed" from "could not run".
var errUnfinished = errors.New("run did not complete")

func detectFormat(file, format string) string {
	if format != "" {
		return format
	}
	switch strings.ToLower(filepath.Ext(file)) {
	case ".qbin":
		return "qubobin"
	case ".gset", ".mc":
		return "gset"
	case ".tsp":
		return "tsplib"
	case ".ising":
		return "ising"
	default:
		return "qubo"
	}
}

func run(ctx context.Context, cfg config) error {
	f, err := os.Open(cfg.file)
	if err != nil {
		return err
	}
	defer f.Close()

	var (
		p           *qubo.Problem
		g           *maxcut.Graph
		enc         *tsp.Encoding
		spins       *ising.Model
		isingOffset int64
	)
	switch detectFormat(cfg.file, cfg.format) {
	case "qubo":
		p, err = qubo.ReadText(f)
	case "qubobin":
		p, err = qubo.ReadBinary(f)
	case "ising":
		spins, err = ising.Read(f)
		if err == nil {
			p, isingOffset, err = spins.ToQUBO()
		}
	case "gset":
		g, err = maxcut.ReadGSet(f)
		if err == nil {
			if g.Name() == "" {
				g.SetName(filepath.Base(cfg.file))
			}
			p, err = maxcut.ToQUBO(g)
		}
	case "tsplib":
		var inst *tsp.Instance
		inst, err = tsp.ReadTSPLIB(f)
		if err == nil {
			enc, err = tsp.Encode(inst)
		}
		if err == nil {
			p = enc.Problem()
		}
	default:
		return fmt.Errorf("unknown format %q", cfg.format)
	}
	if err != nil {
		return err
	}
	if p.Name() == "" {
		p.SetName(filepath.Base(cfg.file))
	}

	opt := core.DefaultOptions()
	opt.MaxDuration = cfg.budget
	opt.NumGPUs = cfg.gpus
	opt.Seed = cfg.seed
	opt.BitsPerThread = cfg.bitsPerThread
	if cfg.sms == 0 {
		opt.Device = gpusim.TuringRTX2080Ti()
	} else {
		opt.Device = gpusim.ScaledCPU(cfg.sms)
	}
	if cfg.hasTarget {
		opt.TargetEnergy = &cfg.target
	}
	opt.Storage, err = core.ParseStorage(cfg.storage)
	if err != nil {
		return err
	}
	opt.Backend = cfg.backend.Backend()
	opt.Diversity = cfg.diversity.Spec()
	opt.TrustPublications = cfg.trustDevices
	opt.SupervisorGrace = cfg.grace
	if cfg.verbose {
		opt.ProgressWriter = os.Stderr
	}

	// Telemetry: a live endpoint, a JSONL event dump, or both, via the
	// shared flag plane. The tracer's ring also backs the endpoint's
	// /trace view, so one is created whenever either sink is requested.
	obs, err := cfg.obs.Open()
	if err != nil {
		return err
	}
	defer obs.Close()
	opt.Telemetry = obs.Registry
	opt.Tracer = obs.Tracer
	if addr := obs.Addr(); addr != "" {
		fmt.Printf("telemetry: http://%s/metrics (JSON at /metrics.json, events at /trace)\n", addr)
	}

	fmt.Printf("instance: %s (%d bits, density %.3f)\n", p.Name(), p.N(), p.Density())
	fmt.Printf("cluster: %d × %s, %d bits/thread requested\n", cfg.gpus, opt.Device.Name, cfg.bitsPerThread)

	// Optional presolve: solve the persistency-reduced instance and
	// expand the answer back to the original variable space.
	var pre *qubo.PresolveResult
	solveProblem := p
	if cfg.presolve {
		pre, err = qubo.Presolve(p)
		if err != nil {
			return err
		}
		fixed := p.N()
		if pre.Reduced != nil {
			fixed -= pre.Reduced.N()
		}
		fmt.Printf("presolve: fixed %d of %d variables (offset %d)\n", fixed, p.N(), pre.Offset)
		if pre.Reduced == nil {
			// Everything fixed: the instance is solved outright.
			x, err := pre.Expand(nil)
			if err != nil {
				return err
			}
			fmt.Printf("best energy: %d (exact, by presolve alone)\n", p.Energy(x))
			if cfg.showSolution {
				fmt.Println("solution:", x)
			}
			return nil
		}
		solveProblem = pre.Reduced
		if cfg.hasTarget {
			reduced := cfg.target - pre.Offset
			opt.TargetEnergy = &reduced
		}
	}

	res, err := core.SolveContext(ctx, solveProblem, opt)
	if err != nil {
		return err
	}
	if res.Cancelled {
		fmt.Println("interrupted — reporting partial results")
	}
	if pre != nil {
		full, err := pre.Expand(res.Best)
		if err != nil {
			return err
		}
		res.Best = full
		res.BestEnergy += pre.Offset
	}
	fmt.Printf("blocks: %d (%d threads/block, %d blocks/GPU, occupancy %.0f%%, %s engine, %s backend)\n",
		res.Blocks, res.Occupancy.ThreadsPerBlock, res.Occupancy.ActiveBlocks, res.Occupancy.Fraction*100, res.Storage, res.Backend)
	fmt.Printf("elapsed: %v   flips: %d   evaluated: %d   search rate: %.3g sol/s\n",
		res.Elapsed.Round(time.Millisecond), res.Flips, res.Evaluated, res.SearchRate)
	fmt.Printf("fault tolerance: %d quarantined, %d respawned, %d retired, %d dropped\n",
		res.Quarantined, res.Recovered, res.Retired, res.Dropped)
	fmt.Printf("best energy: %d", res.BestEnergy)
	if cfg.hasTarget {
		fmt.Printf("   target %d reached: %v", cfg.target, res.ReachedTarget)
	}
	fmt.Println()

	switch {
	case g != nil:
		cut := maxcut.CutValue(g, res.Best)
		fmt.Printf("max-cut value: %d (of total weight %d)\n", cut, g.TotalWeight())
	case enc != nil:
		reportTour(enc, res.Best)
	case spins != nil:
		// 2E = H + C, so the Hamiltonian of the found state is 2E − C.
		fmt.Printf("ising hamiltonian: %d\n", 2*res.BestEnergy-isingOffset)
	}
	if cfg.showSolution {
		fmt.Println("solution:", res.Best)
	}
	switch {
	case res.Cancelled:
		return fmt.Errorf("%w: interrupted after %v", errUnfinished, res.Elapsed.Round(time.Millisecond))
	case cfg.hasTarget && !res.ReachedTarget:
		return fmt.Errorf("%w: budget exhausted before target %d (best %d)", errUnfinished, cfg.target, res.BestEnergy)
	}
	return nil
}

func reportTour(enc *tsp.Encoding, x *bitvec.Vector) {
	tour, err := enc.DecodeTour(x)
	if err != nil {
		fmt.Printf("tour: invalid (%v) — increase -time\n", err)
		return
	}
	l, err := enc.Instance().TourLength(tour)
	if err != nil {
		fmt.Printf("tour: %v\n", err)
		return
	}
	fmt.Printf("tour length: %d\ntour: %v\n", l, tour)
}
