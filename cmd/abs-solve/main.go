// Command abs-solve runs the Adaptive Bulk Search solver on a problem
// file and prints the best solution found.
//
// Usage:
//
//	abs-solve -file problem.qubo [-format qubo|qubobin|gset|tsplib|ising]
//	          [-time 5s] [-target -12345 -use-target] [-gpus 1] [-sms 2]
//	          [-bits-per-thread 0] [-seed 1] [-solution] [-v] [-presolve]
//
// The format defaults from the file extension: .qubo/.txt → qubo text
// (including qbsolv-style headers), .qbin → binary, .gset/.mc → G-set
// Max-Cut, .tsp → TSPLIB, .ising → h/J Ising. Max-Cut inputs report the
// cut value, TSP inputs decode and validate the tour, and Ising inputs
// report the Hamiltonian, in addition to the raw energy. -presolve
// applies persistency-based variable fixing before the search; -v
// streams progress to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"abs/internal/bitvec"
	"abs/internal/core"
	"abs/internal/gpusim"
	"abs/internal/ising"
	"abs/internal/maxcut"
	"abs/internal/qubo"
	"abs/internal/tsp"
)

func main() {
	var (
		file          = flag.String("file", "", "problem file (required)")
		format        = flag.String("format", "", "qubo|qubobin|gset|tsplib (default: by extension)")
		budget        = flag.Duration("time", 5*time.Second, "wall-clock budget")
		target        = flag.Int64("target", 0, "target energy (stops early when reached)")
		hasTarget     = flag.Bool("use-target", false, "enable the -target stop condition")
		gpus          = flag.Int("gpus", 1, "number of simulated GPUs")
		sms           = flag.Int("sms", 2, "SMs per simulated GPU (0 = full RTX 2080 Ti)")
		bitsPerThread = flag.Int("bits-per-thread", 0, "bits per thread (0 = auto)")
		seed          = flag.Uint64("seed", 1, "random seed")
		showSolution  = flag.Bool("solution", false, "print the solution bit vector")
		verbose       = flag.Bool("v", false, "print progress once per second")
		presolve      = flag.Bool("presolve", false, "apply persistency-based variable fixing before solving")
		trustDevices  = flag.Bool("trust-devices", false, "skip host-side publication validation (the paper's pure §3.1 protocol)")
		grace         = flag.Duration("grace", 0, "supervisor grace period before a silent block is respawned (0 = default 2s)")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the solve context: the run shuts down
	// cleanly and the partial result is still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, *file, *format, *budget, *target, *hasTarget, *gpus, *sms, *bitsPerThread, *seed, *showSolution, *verbose, *presolve, *trustDevices, *grace)
	switch {
	case errors.Is(err, errUnfinished):
		fmt.Fprintln(os.Stderr, "abs-solve:", err)
		os.Exit(3)
	case err != nil:
		fmt.Fprintln(os.Stderr, "abs-solve:", err)
		os.Exit(1)
	}
}

// errUnfinished marks a run that ended without doing what was asked:
// interrupted, or out of budget before reaching the requested target.
// main turns it into a distinct non-zero exit code so scripts can tell
// "searched and missed" from "could not run".
var errUnfinished = errors.New("run did not complete")

func detectFormat(file, format string) string {
	if format != "" {
		return format
	}
	switch strings.ToLower(filepath.Ext(file)) {
	case ".qbin":
		return "qubobin"
	case ".gset", ".mc":
		return "gset"
	case ".tsp":
		return "tsplib"
	case ".ising":
		return "ising"
	default:
		return "qubo"
	}
}

func run(ctx context.Context, file, format string, budget time.Duration, target int64, hasTarget bool,
	gpus, sms, bitsPerThread int, seed uint64, showSolution, verbose, presolve, trustDevices bool,
	grace time.Duration) error {

	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()

	var (
		p           *qubo.Problem
		g           *maxcut.Graph
		enc         *tsp.Encoding
		spins       *ising.Model
		isingOffset int64
	)
	switch detectFormat(file, format) {
	case "qubo":
		p, err = qubo.ReadText(f)
	case "qubobin":
		p, err = qubo.ReadBinary(f)
	case "ising":
		spins, err = ising.Read(f)
		if err == nil {
			p, isingOffset, err = spins.ToQUBO()
		}
	case "gset":
		g, err = maxcut.ReadGSet(f)
		if err == nil {
			if g.Name() == "" {
				g.SetName(filepath.Base(file))
			}
			p, err = maxcut.ToQUBO(g)
		}
	case "tsplib":
		var inst *tsp.Instance
		inst, err = tsp.ReadTSPLIB(f)
		if err == nil {
			enc, err = tsp.Encode(inst)
		}
		if err == nil {
			p = enc.Problem()
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	if p.Name() == "" {
		p.SetName(filepath.Base(file))
	}

	opt := core.DefaultOptions()
	opt.MaxDuration = budget
	opt.NumGPUs = gpus
	opt.Seed = seed
	opt.BitsPerThread = bitsPerThread
	if sms == 0 {
		opt.Device = gpusim.TuringRTX2080Ti()
	} else {
		opt.Device = gpusim.ScaledCPU(sms)
	}
	if hasTarget {
		opt.TargetEnergy = &target
	}
	opt.TrustPublications = trustDevices
	opt.SupervisorGrace = grace
	if verbose {
		opt.Progress = func(pr core.Progress) {
			best := "n/a"
			if pr.BestKnown {
				best = fmt.Sprintf("%d", pr.BestEnergy)
			}
			fmt.Fprintf(os.Stderr, "[%7.1fs] best %s, %d flips, %.3g sol/s\n",
				pr.Elapsed.Seconds(), best, pr.Flips,
				float64(pr.Evaluated)/pr.Elapsed.Seconds())
		}
	}

	fmt.Printf("instance: %s (%d bits, density %.3f)\n", p.Name(), p.N(), p.Density())
	fmt.Printf("cluster: %d × %s, %d bits/thread requested\n", gpus, opt.Device.Name, bitsPerThread)

	// Optional presolve: solve the persistency-reduced instance and
	// expand the answer back to the original variable space.
	var pre *qubo.PresolveResult
	solveProblem := p
	if presolve {
		pre, err = qubo.Presolve(p)
		if err != nil {
			return err
		}
		fixed := p.N()
		if pre.Reduced != nil {
			fixed -= pre.Reduced.N()
		}
		fmt.Printf("presolve: fixed %d of %d variables (offset %d)\n", fixed, p.N(), pre.Offset)
		if pre.Reduced == nil {
			// Everything fixed: the instance is solved outright.
			x, err := pre.Expand(nil)
			if err != nil {
				return err
			}
			fmt.Printf("best energy: %d (exact, by presolve alone)\n", p.Energy(x))
			if showSolution {
				fmt.Println("solution:", x)
			}
			return nil
		}
		solveProblem = pre.Reduced
		if hasTarget {
			reduced := target - pre.Offset
			opt.TargetEnergy = &reduced
		}
	}

	res, err := core.SolveContext(ctx, solveProblem, opt)
	if err != nil {
		return err
	}
	if res.Cancelled {
		fmt.Println("interrupted — reporting partial results")
	}
	if pre != nil {
		full, err := pre.Expand(res.Best)
		if err != nil {
			return err
		}
		res.Best = full
		res.BestEnergy += pre.Offset
	}
	fmt.Printf("blocks: %d (%d threads/block, %d blocks/GPU, occupancy %.0f%%)\n",
		res.Blocks, res.Occupancy.ThreadsPerBlock, res.Occupancy.ActiveBlocks, res.Occupancy.Fraction*100)
	fmt.Printf("elapsed: %v   flips: %d   evaluated: %d   search rate: %.3g sol/s\n",
		res.Elapsed.Round(time.Millisecond), res.Flips, res.Evaluated, res.SearchRate)
	if res.Quarantined > 0 || res.Recovered > 0 || res.Retired > 0 || res.Dropped > 0 {
		fmt.Printf("fault tolerance: %d quarantined, %d respawned, %d retired, %d dropped\n",
			res.Quarantined, res.Recovered, res.Retired, res.Dropped)
	}
	fmt.Printf("best energy: %d", res.BestEnergy)
	if hasTarget {
		fmt.Printf("   target %d reached: %v", target, res.ReachedTarget)
	}
	fmt.Println()

	switch {
	case g != nil:
		cut := maxcut.CutValue(g, res.Best)
		fmt.Printf("max-cut value: %d (of total weight %d)\n", cut, g.TotalWeight())
	case enc != nil:
		reportTour(enc, res.Best)
	case spins != nil:
		// 2E = H + C, so the Hamiltonian of the found state is 2E − C.
		fmt.Printf("ising hamiltonian: %d\n", 2*res.BestEnergy-isingOffset)
	}
	if showSolution {
		fmt.Println("solution:", res.Best)
	}
	switch {
	case res.Cancelled:
		return fmt.Errorf("%w: interrupted after %v", errUnfinished, res.Elapsed.Round(time.Millisecond))
	case hasTarget && !res.ReachedTarget:
		return fmt.Errorf("%w: budget exhausted before target %d (best %d)", errUnfinished, target, res.BestEnergy)
	}
	return nil
}

func reportTour(enc *tsp.Encoding, x *bitvec.Vector) {
	tour, err := enc.DecodeTour(x)
	if err != nil {
		fmt.Printf("tour: invalid (%v) — increase -time\n", err)
		return
	}
	l, err := enc.Instance().TourLength(tour)
	if err != nil {
		fmt.Printf("tour: %v\n", err)
		return
	}
	fmt.Printf("tour length: %d\ntour: %v\n", l, tour)
}
