package main

import "testing"

func TestParseScale(t *testing.T) {
	for _, name := range []string{"quick", "medium", "full"} {
		s, err := parseScale(name)
		if err != nil {
			t.Errorf("parseScale(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("parseScale(%q) returned scale %q", name, s.Name)
		}
	}
	if _, err := parseScale("bananas"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestDispatch(t *testing.T) {
	if dispatch(true, "", "", "") == nil {
		t.Error("-all not dispatched")
	}
	for _, tbl := range []string{"1a", "1b", "1c", "2", "3"} {
		if dispatch(false, tbl, "", "") == nil {
			t.Errorf("table %q not dispatched", tbl)
		}
	}
	if dispatch(false, "", "8", "") == nil {
		t.Error("figure 8 not dispatched")
	}
	for _, ab := range []string{"efficiency", "straight", "selection", "pool",
		"storage", "adaptive", "ladder", "parameters"} {
		if dispatch(false, "", "", ab) == nil {
			t.Errorf("ablation %q not dispatched", ab)
		}
	}
	// Invalid combinations yield nil → usage.
	if dispatch(false, "", "", "") != nil {
		t.Error("empty flags dispatched")
	}
	if dispatch(false, "9z", "", "") != nil {
		t.Error("unknown table dispatched")
	}
	if dispatch(false, "", "", "bananas") != nil {
		t.Error("unknown ablation dispatched")
	}
	if dispatch(false, "", "7", "") != nil {
		t.Error("unknown figure dispatched")
	}
}
