// Command abs-bench regenerates the tables and figures of the paper's
// evaluation section (§4) plus the ablation studies, printing
// paper-published values next to this host's measured and modelled
// values.
//
// Usage:
//
//	abs-bench -all [-scale quick|medium|full]
//	abs-bench -table 1a|1b|1c|2|3 [-scale quick|medium|full]
//	abs-bench -figure 8
//	abs-bench -ablation efficiency|straight|selection|pool|storage|
//	                    adaptive|ladder|parameters
//	abs-bench -report BENCH.json [-scale quick|medium|full]
//	abs-bench -cluster-report BENCH.json [-scale quick|medium|full]
//	abs-bench -sparse-report BENCH.json [-assert-ratio 2.0]
//	abs-bench -dense-report BENCH.json [-assert-dense-ratio 2.0]
//	abs-bench -backend-report BENCH.json [-scale quick|medium|full]
//
// Every benchmark solve accepts -backend to pin the solver backend
// (auto|straight|sb|tabu|race; auto means straight).
//
// -report solves a fixed seeded problem set with telemetry attached
// and writes a machine-readable JSON report (per-device flips/sec,
// best energy, wall time per run). -cluster-report solves one
// G-set-style instance twice under the same budget — single node vs a
// two-worker loopback HTTP cluster — and writes the comparison with
// best-energy trajectories. -sparse-report solves a G-set-style, a
// Chimera and a dense random instance on both the dense and the sparse
// engine and writes flips/sec and time-to-target side by side;
// -assert-ratio additionally fails the process unless the sparse
// engine delivers at least that multiple of the dense flips/sec on
// every below-threshold instance (the CI regression gate).
// -dense-report solves fully dense random instances twice — the dense
// flip pinned to the scalar reference loop, then to the batched
// delta-evaluation kernel — and writes flips/sec side by side;
// -assert-dense-ratio fails the process unless the batched kernel
// delivers at least that multiple of the scalar flips/sec on every
// instance (the CI dense-kernel regression gate). -backend-report runs
// every registered solver backend over the sparse sweep's instance
// families and writes time-to-target side by side, with a per-family
// winner.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"abs/internal/backendflag"
	"abs/internal/bench"
	"abs/internal/diversityflag"
)

// renderFunc is one report section.
type renderFunc = func(io.Writer, bench.Scale) error

// parseScale maps the -scale flag value to a Scale.
func parseScale(name string) (bench.Scale, error) {
	switch name {
	case "quick":
		return bench.Quick(), nil
	case "medium":
		return bench.Medium(), nil
	case "full":
		return bench.Full(), nil
	default:
		return bench.Scale{}, fmt.Errorf("unknown scale %q", name)
	}
}

// dispatch resolves the flag combination to a renderer; nil means the
// combination is invalid and usage should be shown.
func dispatch(all bool, table, figure, ablation string) renderFunc {
	switch {
	case all:
		return bench.All
	case table != "":
		return map[string]renderFunc{
			"1a": bench.Table1a,
			"1b": bench.Table1b,
			"1c": bench.Table1c,
			"2":  bench.Table2,
			"3":  bench.Table3,
		}[table]
	case figure == "8":
		return bench.Figure8
	case ablation != "":
		return map[string]renderFunc{
			"efficiency": bench.AblationEfficiency,
			"straight":   bench.AblationStraight,
			"selection":  bench.AblationSelection,
			"pool":       bench.AblationPool,
			"storage":    bench.AblationStorage,
			"adaptive":   bench.AblationAdaptive,
			"ladder":     bench.AblationLadder,
			"parameters": bench.AblationParameters,
		}[ablation]
	default:
		return nil
	}
}

func main() {
	var (
		all      = flag.Bool("all", false, "run every table, figure and ablation")
		table    = flag.String("table", "", "regenerate one table: 1a, 1b, 1c, 2, 3")
		figure   = flag.String("figure", "", "regenerate one figure: 8")
		ablation = flag.String("ablation", "", "run one ablation: efficiency, straight, selection, pool, storage, adaptive, ladder, parameters")
		scale    = flag.String("scale", "quick", "experiment scale: quick, medium or full")
		report   = flag.String("report", "", "write a machine-readable JSON run report to this file")
		clusterR = flag.String("cluster-report", "", "write a single-node vs loopback-cluster comparison JSON to this file")
		sparseR  = flag.String("sparse-report", "", "write a dense-vs-sparse engine comparison JSON to this file")
		ratio    = flag.Float64("assert-ratio", 0, "with -sparse-report: fail unless sparse/dense flips ratio is at least this on below-threshold instances (0 disables)")
		denseR   = flag.String("dense-report", "", "write a scalar-vs-batched dense-kernel comparison JSON to this file")
		dratio   = flag.Float64("assert-dense-ratio", 0, "with -dense-report: fail unless batched/scalar flips ratio is at least this on every instance (0 disables; relaxed to no-regression without SIMD)")
		backendR = flag.String("backend-report", "", "write a per-backend time-to-target comparison JSON to this file")
		backend  = backendflag.Register("auto means straight; applies to every benchmark solve except -backend-report, which sweeps all backends")
		divFlag  = diversityflag.Register("applies to every benchmark solve; -backend-report additionally sweeps a race-static row at floor=1.0")
	)
	flag.Parse()
	bench.SetDefaultBackend(backend.Backend())
	bench.SetDefaultDiversity(divFlag.Spec())

	s, err := parseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abs-bench:", err)
		os.Exit(2)
	}
	if *report != "" {
		if err := writeReportFile(*report, s, bench.WriteReport); err != nil {
			fmt.Fprintln(os.Stderr, "abs-bench:", err)
			os.Exit(1)
		}
		fmt.Println("report written to", *report)
	}
	if *clusterR != "" {
		if err := writeReportFile(*clusterR, s, bench.WriteClusterReport); err != nil {
			fmt.Fprintln(os.Stderr, "abs-bench:", err)
			os.Exit(1)
		}
		fmt.Println("cluster report written to", *clusterR)
	}
	if *sparseR != "" {
		if err := writeSparseReport(*sparseR, s, *ratio); err != nil {
			fmt.Fprintln(os.Stderr, "abs-bench:", err)
			os.Exit(1)
		}
		fmt.Println("sparse report written to", *sparseR)
	}
	if *denseR != "" {
		if err := writeDenseReport(*denseR, s, *dratio); err != nil {
			fmt.Fprintln(os.Stderr, "abs-bench:", err)
			os.Exit(1)
		}
		fmt.Println("dense report written to", *denseR)
	}
	if *backendR != "" {
		if err := writeBackendReport(*backendR, s); err != nil {
			fmt.Fprintln(os.Stderr, "abs-bench:", err)
			os.Exit(1)
		}
		fmt.Println("backend report written to", *backendR)
	}
	if (*report != "" || *clusterR != "" || *sparseR != "" || *denseR != "" || *backendR != "") &&
		!*all && *table == "" && *figure == "" && *ablation == "" {
		return
	}
	fn := dispatch(*all, *table, *figure, *ablation)
	if fn == nil {
		flag.Usage()
		os.Exit(2)
	}
	if err := fn(os.Stdout, s); err != nil {
		fmt.Fprintln(os.Stderr, "abs-bench:", err)
		os.Exit(1)
	}
}

// writeReportFile renders one JSON report to path.
func writeReportFile(path string, s bench.Scale, write func(io.Writer, bench.Scale) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSparseReport builds the dense-vs-sparse comparison once, writes
// it to path and, when minRatio > 0, enforces the sparse-speedup gate
// on the same measurement (written first so a failing run still leaves
// the evidence on disk).
func writeSparseReport(path string, s bench.Scale, minRatio float64) error {
	rep, err := bench.BuildSparseReport(s)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if minRatio > 0 {
		return bench.CheckSparseRatios(rep, minRatio)
	}
	return nil
}

// writeDenseReport builds the scalar-vs-batched kernel comparison
// once, writes it to path and, when minRatio > 0, enforces the
// speedup gate on the same measurement (written first so a failing
// run still leaves the evidence on disk).
func writeDenseReport(path string, s bench.Scale, minRatio float64) error {
	rep, err := bench.BuildDenseReport(s)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if minRatio > 0 {
		return bench.CheckDenseRatios(rep, minRatio)
	}
	return nil
}

// writeBackendReport builds the per-backend time-to-target comparison
// and writes it to path.
func writeBackendReport(path string, s bench.Scale) error {
	rep, err := bench.BuildBackendReport(s)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
