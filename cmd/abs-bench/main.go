// Command abs-bench regenerates the tables and figures of the paper's
// evaluation section (§4) plus the ablation studies, printing
// paper-published values next to this host's measured and modelled
// values.
//
// Usage:
//
//	abs-bench -all [-scale quick|medium|full]
//	abs-bench -table 1a|1b|1c|2|3 [-scale quick|medium|full]
//	abs-bench -figure 8
//	abs-bench -ablation efficiency|straight|selection|pool|storage|
//	                    adaptive|ladder|parameters
//	abs-bench -report BENCH.json [-scale quick|medium|full]
//	abs-bench -cluster-report BENCH.json [-scale quick|medium|full]
//
// -report solves a fixed seeded problem set with telemetry attached
// and writes a machine-readable JSON report (per-device flips/sec,
// best energy, wall time per run). -cluster-report solves one
// G-set-style instance twice under the same budget — single node vs a
// two-worker loopback HTTP cluster — and writes the comparison with
// best-energy trajectories.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"abs/internal/bench"
)

// renderFunc is one report section.
type renderFunc = func(io.Writer, bench.Scale) error

// parseScale maps the -scale flag value to a Scale.
func parseScale(name string) (bench.Scale, error) {
	switch name {
	case "quick":
		return bench.Quick(), nil
	case "medium":
		return bench.Medium(), nil
	case "full":
		return bench.Full(), nil
	default:
		return bench.Scale{}, fmt.Errorf("unknown scale %q", name)
	}
}

// dispatch resolves the flag combination to a renderer; nil means the
// combination is invalid and usage should be shown.
func dispatch(all bool, table, figure, ablation string) renderFunc {
	switch {
	case all:
		return bench.All
	case table != "":
		return map[string]renderFunc{
			"1a": bench.Table1a,
			"1b": bench.Table1b,
			"1c": bench.Table1c,
			"2":  bench.Table2,
			"3":  bench.Table3,
		}[table]
	case figure == "8":
		return bench.Figure8
	case ablation != "":
		return map[string]renderFunc{
			"efficiency": bench.AblationEfficiency,
			"straight":   bench.AblationStraight,
			"selection":  bench.AblationSelection,
			"pool":       bench.AblationPool,
			"storage":    bench.AblationStorage,
			"adaptive":   bench.AblationAdaptive,
			"ladder":     bench.AblationLadder,
			"parameters": bench.AblationParameters,
		}[ablation]
	default:
		return nil
	}
}

func main() {
	var (
		all      = flag.Bool("all", false, "run every table, figure and ablation")
		table    = flag.String("table", "", "regenerate one table: 1a, 1b, 1c, 2, 3")
		figure   = flag.String("figure", "", "regenerate one figure: 8")
		ablation = flag.String("ablation", "", "run one ablation: efficiency, straight, selection, pool, storage, adaptive, ladder, parameters")
		scale    = flag.String("scale", "quick", "experiment scale: quick, medium or full")
		report   = flag.String("report", "", "write a machine-readable JSON run report to this file")
		clusterR = flag.String("cluster-report", "", "write a single-node vs loopback-cluster comparison JSON to this file")
	)
	flag.Parse()

	s, err := parseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abs-bench:", err)
		os.Exit(2)
	}
	if *report != "" {
		if err := writeReportFile(*report, s, bench.WriteReport); err != nil {
			fmt.Fprintln(os.Stderr, "abs-bench:", err)
			os.Exit(1)
		}
		fmt.Println("report written to", *report)
	}
	if *clusterR != "" {
		if err := writeReportFile(*clusterR, s, bench.WriteClusterReport); err != nil {
			fmt.Fprintln(os.Stderr, "abs-bench:", err)
			os.Exit(1)
		}
		fmt.Println("cluster report written to", *clusterR)
	}
	if (*report != "" || *clusterR != "") &&
		!*all && *table == "" && *figure == "" && *ablation == "" {
		return
	}
	fn := dispatch(*all, *table, *figure, *ablation)
	if fn == nil {
		flag.Usage()
		os.Exit(2)
	}
	if err := fn(os.Stdout, s); err != nil {
		fmt.Fprintln(os.Stderr, "abs-bench:", err)
		os.Exit(1)
	}
}

// writeReportFile renders one JSON report to path.
func writeReportFile(path string, s bench.Scale, write func(io.Writer, bench.Scale) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
