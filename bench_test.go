// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section, plus the ablations of DESIGN.md. Each
// iteration renders the corresponding report at a reduced scale; run
// cmd/abs-bench -scale full for the paper-faithful version.
package abs

import (
	"io"
	"testing"
	"time"

	"abs/internal/bench"
)

// benchScale keeps each iteration of the table benchmarks bounded; the
// numbers it reports are end-to-end report-generation times, while the
// tables themselves (printed by cmd/abs-bench) carry the scientific
// content.
func benchScale() bench.Scale {
	return bench.Scale{
		Name:            "bench",
		Calibration:     150 * time.Millisecond,
		RunCap:          1 * time.Second,
		Repeats:         1,
		RateBudget:      80 * time.Millisecond,
		MaxBits:         1100,
		MaxMeasuredBits: 2048,
	}
}

func benchTable(b *testing.B, fn func(io.Writer, bench.Scale) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1aMaxCut regenerates Table 1(a): G-set Max-Cut
// time-to-solution.
func BenchmarkTable1aMaxCut(b *testing.B) { benchTable(b, bench.Table1a) }

// BenchmarkTable1bTSP regenerates Table 1(b): TSPLIB-sized TSP
// time-to-solution.
func BenchmarkTable1bTSP(b *testing.B) { benchTable(b, bench.Table1b) }

// BenchmarkTable1cRandom regenerates Table 1(c): synthetic random
// time-to-solution.
func BenchmarkTable1cRandom(b *testing.B) { benchTable(b, bench.Table1c) }

// BenchmarkTable2Throughput regenerates Table 2: the occupancy sweep
// with modelled and measured search rates.
func BenchmarkTable2Throughput(b *testing.B) { benchTable(b, bench.Table2) }

// BenchmarkFigure8Scaling regenerates Figure 8: search-rate scaling
// with GPU count.
func BenchmarkFigure8Scaling(b *testing.B) { benchTable(b, bench.Figure8) }

// BenchmarkTable3Comparison regenerates Table 3: the system comparison
// plus the live ABS-vs-SA baseline.
func BenchmarkTable3Comparison(b *testing.B) { benchTable(b, bench.Table3) }

// BenchmarkAblationAlgorithms measures the search-efficiency ladder of
// Algorithms 1–4 (Lemmas 1–3, Theorem 1).
func BenchmarkAblationAlgorithms(b *testing.B) { benchTable(b, bench.AblationEfficiency) }

// BenchmarkAblationStraightSearch measures GA-handoff strategies
// (Algorithm 5 vs. re-initialization).
func BenchmarkAblationStraightSearch(b *testing.B) { benchTable(b, bench.AblationStraight) }

// BenchmarkAblationSelection compares bit-selection policies on a fixed
// flip budget.
func BenchmarkAblationSelection(b *testing.B) { benchTable(b, bench.AblationSelection) }

// BenchmarkAblationPool measures the solution-pool distinctness guard.
func BenchmarkAblationPool(b *testing.B) { benchTable(b, bench.AblationPool) }

// BenchmarkAblationStorage compares the dense paper kernel with the
// sparse adjacency engine on a G-set-family graph.
func BenchmarkAblationStorage(b *testing.B) { benchTable(b, bench.AblationStorage) }

// BenchmarkAblationAdaptive compares the static window ladder with the
// adaptive per-block rescheduler.
func BenchmarkAblationAdaptive(b *testing.B) { benchTable(b, bench.AblationAdaptive) }

// BenchmarkSolveRate1k measures raw end-to-end solver throughput on the
// canonical 1 k-bit instance — the quantity behind the paper's
// "search rate" headline, on this host.
func BenchmarkSolveRate1k(b *testing.B) {
	p := RandomProblem(1024, 1)
	for i := 0; i < b.N; i++ {
		res, err := SolveFor(p, 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SearchRate, "solutions/s")
	}
}

// BenchmarkAblationParameters sweeps LocalSteps × PoolSize sensitivity.
func BenchmarkAblationParameters(b *testing.B) { benchTable(b, bench.AblationParameters) }

// BenchmarkAblationLadder reports pool admissions by window-ladder rung.
func BenchmarkAblationLadder(b *testing.B) { benchTable(b, bench.AblationLadder) }
