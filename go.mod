module abs

go 1.22
